//! Packed, register-blocked GEMM kernels shared by every matmul layout.
//!
//! The three matmul layouts (`nn`: `A·B`, `nt`: `A·Bᵀ`, `tn`: `Aᵀ·B`) all
//! reduce over the shared dimension `k` with `p` strictly ascending per
//! output element. This module gives them one BLIS-style inner kernel:
//!
//! * **Packing.** For each `KC × NC` panel of the right operand, the driver
//!   copies the panel into a contiguous scratch buffer laid out in
//!   `NR`-wide column tiles (`panel[tile][p · NR + j]`). For `nt` this is
//!   the transposing copy that turns the layout's strided `Bᵀ` reads — the
//!   4.4× serial penalty the kernel bench used to show — into unit-stride
//!   streams. The left operand packs per `MC × KC` block into `MR`-row
//!   tiles (`apanel[p · MR + i]`; for `tn` this untransposes the
//!   column-major reads), packed **once per k-panel** and reused across
//!   every `NR` tile of the column panel — the old per-`MR`-tile repacking
//!   copied `A` `n/NC` times more than necessary. Both pack buffers draw
//!   from the buffer arena ([`crate::alloc`]), so steady-state GEMMs
//!   allocate nothing.
//! * **Microkernel.** [`microkernel`] accumulates an arch-tuned `MR × NR`
//!   register tile over one `k` panel: the tile is loaded from the output,
//!   every `p` term is added directly to its running element total, and the
//!   tile is stored once per panel — `k/KC` output round-trips instead of
//!   `k`. The tile shape is chosen per target at compile time (the
//!   workspace builds with `target-cpu=native`): 8×32 with AVX-512 (16
//!   accumulator registers of 16 lanes), 6×16 with AVX2 (12 of 8), and the
//!   portable 4×8 otherwise. The `j` lanes are fully independent, so the
//!   compiler vectorizes them without reassociating anything.
//!
//! # Determinism contract
//!
//! Packing and register blocking are pure *data-movement* changes: each
//! output element still accumulates `a·b` terms one at a time in strictly
//! ascending `p` order starting from `0.0`, exactly the order of the plain
//! `i-k-j` triple loop. Results are therefore bitwise identical to the
//! unpacked kernels, for every layout, tile shape, tile remainder, thread
//! count and split direction (row chunks or column panels; see
//! [`crate::pool`]) — a column panel is just an independent subproblem over
//! the same `A`. Zero padding in edge tiles only ever feeds lanes whose
//! results are discarded, so `NaN`/`∞` propagation is untouched. As in the
//! unpacked kernels there is no `a == 0.0` fast path: `0·NaN` must stay
//! `NaN`. There is also no FMA: rustc never contracts `mul` + `add`, so
//! wider SIMD lanes cannot change a single bit of any output.
//!
//! The optional fused bias epilogue adds `bias[j]` to an output strip
//! immediately after the strip's final `k` panel — per element this is the
//! same `(Σₚ aₚ·bₚ) + bias` order as a separate full-output pass, so the
//! fused and unfused paths are bitwise identical too (while the strip is
//! still cache-hot, which is the point of fusing).

use crate::alloc;

/// Cache-block depth over the shared (`k`) dimension: one packed panel of
/// the right operand covers `KC` consecutive `p` values.
pub(crate) const KC: usize = 128;

/// Cache-block width over output columns: the packed right-operand panel
/// covers `NC` consecutive output columns (`NC` is a multiple of `NR`).
pub(crate) const NC: usize = 512;

/// Cache-block height over output rows: the packed left-operand block
/// covers `MC` consecutive rows and lives in L2 across the whole column
/// panel.
pub(crate) const MC: usize = 128;

/// Arch-tuned register tile: AVX-512 has 32 vector registers, so an 8×32
/// tile keeps 16 accumulators plus the two `b` vectors and the broadcast
/// resident.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod tile {
    /// Microkernel tile height (output rows held in registers).
    pub const MR: usize = 8;
    /// Microkernel tile width (a multiple of the f32 SIMD width).
    pub const NR: usize = 32;
}

/// Arch-tuned register tile: AVX2's 16 ymm registers fit a 6×16 tile (12
/// accumulators plus the two `b` vectors and the broadcast).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    not(target_feature = "avx512f")
))]
mod tile {
    /// Microkernel tile height (output rows held in registers).
    pub const MR: usize = 6;
    /// Microkernel tile width (a multiple of the f32 SIMD width).
    pub const NR: usize = 16;
}

/// Portable register tile for targets without wide x86 vectors (SSE2,
/// NEON, …).
#[cfg(not(any(
    all(target_arch = "x86_64", target_feature = "avx512f"),
    all(
        target_arch = "x86_64",
        target_feature = "avx2",
        not(target_feature = "avx512f")
    )
)))]
mod tile {
    /// Microkernel tile height (output rows held in registers).
    pub const MR: usize = 4;
    /// Microkernel tile width (a multiple of the f32 SIMD width).
    pub const NR: usize = 8;
}

pub(crate) use tile::{MR, NR};

/// How the operands of [`gemm_chunk`] are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `a: [m, k]` row-major, `b: [k, n]` row-major.
    Nn,
    /// `a: [m, k]` row-major, `b: [n, k]` row-major (used as `Bᵀ`).
    Nt,
    /// `a: [k, m]` row-major (used as `Aᵀ`, column reads), `b: [k, n]`.
    Tn,
}

/// One GEMM problem: `out[i, j] += Σₚ A'[i, p] · B'[p, j]` where `A'`/`B'`
/// are the layout-adjusted views of `a` and `b`.
pub(crate) struct Gemm<'a> {
    pub a: &'a [f32],
    pub b: &'a [f32],
    /// Shared dimension.
    pub k: usize,
    /// Output columns of the *full* problem (the stride of `b`'s rows for
    /// `Nn`/`Tn`; column-panel runs compute a sub-range of these).
    pub n: usize,
    /// Output rows of the *full* problem (`Tn` needs it to stride `a`).
    pub m: usize,
    pub layout: Layout,
}

/// Write access to the output rows of one GEMM run.
///
/// The row-chunk split hands the kernel a contiguous `rows × width`
/// buffer ([`ContigRows`]); the column-panel split hands it a strided
/// panel ([`crate::pool::ColPanelMut`]). Either way `row_mut(r)` is the
/// `width`-wide output slice of chunk-local row `r`.
pub(crate) trait OutRows {
    /// Mutable output slice of chunk-local row `r`.
    fn row_mut(&mut self, r: usize) -> &mut [f32];
}

/// Contiguous row-major output rows (the row-chunk and serial paths).
pub(crate) struct ContigRows<'a> {
    pub buf: &'a mut [f32],
    pub width: usize,
}

impl OutRows for ContigRows<'_> {
    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.buf[r * self.width..(r + 1) * self.width]
    }
}

impl OutRows for crate::pool::ColPanelMut<'_> {
    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [f32] {
        crate::pool::ColPanelMut::row_mut(self, r)
    }
}

/// Accumulates one `MR × NR` register tile over a packed `k` panel.
///
/// `apanel` is `pc × MR` (`p`-major), `btile` is `pc × NR` (`p`-major).
/// Every `c[i][j]` element receives its `pc` terms one at a time in
/// ascending `p` order — the bitwise-identity invariant lives here.
///
/// The row loop is outermost on purpose: each row's `NR`-wide accumulator
/// is a local that stays live across the whole `p` loop, so the compiler
/// holds it in vector registers and vectorizes along the contiguous `j`
/// axis (unit-stride `b` loads, broadcast `a`). With the `p` loop outside,
/// LLVM instead vectorized across the *row* axis and emitted
/// gather/scatter for every column of `c` — a 5× slowdown. Looping rows
/// first re-reads `btile` `MR` times, but the tile lives in L1 by
/// construction.
#[inline]
fn microkernel(apanel: &[f32], btile: &[f32], c: &mut [[f32; NR]; MR]) {
    for (ir, crow) in c.iter_mut().enumerate() {
        let mut acc = *crow;
        for (a, b) in apanel.chunks_exact(MR).zip(btile.chunks_exact(NR)) {
            // Fixed-size views: no bounds checks, full unroll of the width.
            let a: &[f32; MR] = a.try_into().unwrap();
            let b: &[f32; NR] = b.try_into().unwrap();
            let av = a[ir];
            for (cv, &bv) in acc.iter_mut().zip(b) {
                *cv += av * bv;
            }
        }
        *crow = acc;
    }
}

/// Packs the `pc × jc` panel of the layout-adjusted right operand starting
/// at global column `j_abs`, `k` range `[p0, p0+pc)`, into `NR`-wide column
/// tiles. Ragged tile columns are zero-padded (their microkernel lanes are
/// discarded on write-back).
fn pack_b(g: &Gemm<'_>, p0: usize, pc: usize, j_abs: usize, jc: usize, panel: &mut [f32]) {
    let jtiles = jc.div_ceil(NR);
    for jt in 0..jtiles {
        let jbase = j_abs + jt * NR;
        let w = NR.min(j_abs + jc - jbase);
        let tile = &mut panel[jt * pc * NR..(jt + 1) * pc * NR];
        match g.layout {
            Layout::Nn | Layout::Tn => {
                // b is [k, n]: rows of the panel are contiguous slices.
                for (p, dst) in tile.chunks_exact_mut(NR).enumerate() {
                    let src = &g.b[(p0 + p) * g.n + jbase..(p0 + p) * g.n + jbase + w];
                    dst[..w].copy_from_slice(src);
                    dst[w..].fill(0.0);
                }
            }
            Layout::Nt => {
                // b is [n, k] used as Bᵀ: read each of the `w` rows of b
                // contiguously, scattering into the p-major tile — this is
                // the transposing copy that de-strides the nt layout.
                for jr in 0..w {
                    let src = &g.b[(jbase + jr) * g.k + p0..(jbase + jr) * g.k + p0 + pc];
                    for (p, &v) in src.iter().enumerate() {
                        tile[p * NR + jr] = v;
                    }
                }
                for jr in w..NR {
                    for p in 0..pc {
                        tile[p * NR + jr] = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs the `mc`-row block of the layout-adjusted left operand starting at
/// global row `row0`, `k` range `[p0, p0+pc)`, into consecutive `p`-major
/// `MR`-row tiles (`block[tile][p · MR + i]`). Ragged tile rows are
/// zero-padded (results discarded on write-back).
fn pack_a_block(g: &Gemm<'_>, row0: usize, mc: usize, p0: usize, pc: usize, block: &mut [f32]) {
    let mtiles = mc.div_ceil(MR);
    for mt in 0..mtiles {
        let rbase = row0 + mt * MR;
        let mr = MR.min(row0 + mc - rbase);
        let apanel = &mut block[mt * pc * MR..(mt + 1) * pc * MR];
        match g.layout {
            Layout::Nn | Layout::Nt => {
                // a is [m, k]: each tile row is a contiguous slice of a.
                for ir in 0..mr {
                    let src = &g.a[(rbase + ir) * g.k + p0..(rbase + ir) * g.k + p0 + pc];
                    for (p, &v) in src.iter().enumerate() {
                        apanel[p * MR + ir] = v;
                    }
                }
                for ir in mr..MR {
                    for p in 0..pc {
                        apanel[p * MR + ir] = 0.0;
                    }
                }
            }
            Layout::Tn => {
                // a is [k, m] used as Aᵀ: each p supplies a contiguous row
                // fragment — packing untransposes the column-major reads.
                for (p, dst) in apanel.chunks_exact_mut(MR).enumerate().take(pc) {
                    let src = &g.a[(p0 + p) * g.m + rbase..(p0 + p) * g.m + rbase + mr];
                    dst[..mr].copy_from_slice(src);
                    dst[mr..].fill(0.0);
                }
            }
        }
    }
}

/// Runs the packed GEMM over output rows `[i0, i0 + rows)` and the global
/// column window `[j_off, j_off + jcols)`, writing through `out` (whose
/// chunk-local rows are `jcols` wide). `bias`, when present, is indexed by
/// *global* column and fused into each output strip after its final `k`
/// panel.
///
/// This is the per-task kernel both pool splits dispatch: the row split
/// passes `j_off = 0, jcols = g.n` with a contiguous chunk, the column
/// split passes its panel's window over all rows. With one thread it runs
/// the whole output.
pub(crate) fn gemm_chunk<O: OutRows>(
    g: &Gemm<'_>,
    i0: usize,
    rows: usize,
    j_off: usize,
    jcols: usize,
    out: &mut O,
    bias: Option<&[f32]>,
) {
    if jcols == 0 || rows == 0 {
        return;
    }
    // Pack scratch comes from the arena, recycled across calls (and across
    // threads' independent chunks — each task takes its own buffers).
    let bcap = KC * NC.min(jcols.next_multiple_of(NR));
    let mut bpanel = alloc::take_zeroed(bcap);
    let mut ablock = alloc::take_zeroed(KC * MC.min(rows).next_multiple_of(MR));
    for j0 in (0..jcols).step_by(NC) {
        let jc = NC.min(jcols - j0);
        let jtiles = jc.div_ceil(NR);
        for p0 in (0..g.k).step_by(KC) {
            let pc = KC.min(g.k - p0);
            pack_b(g, p0, pc, j_off + j0, jc, &mut bpanel[..jtiles * pc * NR]);
            for ib in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ib);
                let mtiles = mc.div_ceil(MR);
                // One A pack per (k-panel, row block), reused across every
                // NR tile of the column panel.
                pack_a_block(g, i0 + ib, mc, p0, pc, &mut ablock[..mtiles * pc * MR]);
                for mt in 0..mtiles {
                    let r0 = ib + mt * MR;
                    // Clamp to the packed block, not the whole chunk: when
                    // MC % MR != 0 (the 6-row AVX2 tile) the last tile of a
                    // non-final block would otherwise spill into the next
                    // block's rows, adding `0·b` terms from the zero padding
                    // (x + 0·∞ = NaN, -0.0 + 0.0 = +0.0) before those rows'
                    // own block runs.
                    let mr = MR.min(ib + mc - r0);
                    let apanel = &ablock[mt * pc * MR..(mt + 1) * pc * MR];
                    for jt in 0..jtiles {
                        let jbase = j0 + jt * NR;
                        let w = NR.min(j0 + jc - jbase);
                        let mut c = [[0.0f32; NR]; MR];
                        for (ir, crow) in c.iter_mut().enumerate().take(mr) {
                            let src = &out.row_mut(r0 + ir)[jbase..jbase + w];
                            crow[..w].copy_from_slice(src);
                        }
                        microkernel(apanel, &bpanel[jt * pc * NR..][..pc * NR], &mut c);
                        for (ir, crow) in c.iter().enumerate().take(mr) {
                            let dst = &mut out.row_mut(r0 + ir)[jbase..jbase + w];
                            dst.copy_from_slice(&crow[..w]);
                        }
                    }
                }
            }
        }
        if let Some(bias) = bias {
            // Fused epilogue: the strip's k-accumulation just finished, so
            // per element this is exactly `matmul-result + bias` — bitwise
            // equal to the unfused second pass, but while the strip is hot.
            let brow = &bias[j_off + j0..j_off + j0 + jc];
            for r in 0..rows {
                let dst = &mut out.row_mut(r)[j0..j0 + jc];
                for (o, &bv) in dst.iter_mut().zip(brow) {
                    *o += bv;
                }
            }
        }
    }
    alloc::release(bpanel);
    alloc::release(ablock);
}
