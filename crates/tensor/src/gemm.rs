//! Packed, register-blocked GEMM kernels shared by every matmul layout.
//!
//! The three matmul layouts (`nn`: `A·B`, `nt`: `A·Bᵀ`, `tn`: `Aᵀ·B`) all
//! reduce over the shared dimension `k` with `p` strictly ascending per
//! output element. This module gives them one BLIS-style inner kernel:
//!
//! * **Packing.** For each `KC × NC` panel of the right operand, the driver
//!   copies the panel into a contiguous scratch buffer laid out in
//!   `NR`-wide column tiles (`panel[tile][p · NR + j]`). For `nt` this is
//!   the transposing copy that turns the layout's strided `Bᵀ` reads — the
//!   4.4× serial penalty the kernel bench used to show — into unit-stride
//!   streams. The left operand packs per `MR`-row tile (`apanel[p · MR + i]`;
//!   for `tn` this untransposes the column-major reads). Pack scratch for
//!   the B panel draws from the buffer arena ([`crate::alloc`]); the A tile
//!   is a fixed 1 KiB stack array.
//! * **Microkernel.** [`microkernel`] accumulates an `MR × NR` register
//!   tile over one `k` panel: the tile is loaded from the output, every
//!   `p` term is added directly to its running element total, and the tile
//!   is stored once per panel — `k/KC` output round-trips instead of `k`.
//!
//! # Determinism contract
//!
//! Packing and register blocking are pure *data-movement* changes: each
//! output element still accumulates `a·b` terms one at a time in strictly
//! ascending `p` order starting from `0.0`, exactly the order of the plain
//! `i-k-j` triple loop. Results are therefore bitwise identical to the
//! unpacked kernels, for every layout, tile remainder and thread count
//! (threading stays rows-only; see [`crate::pool`]). Zero padding in edge
//! tiles only ever feeds lanes whose results are discarded, so `NaN`/`∞`
//! propagation is untouched. As in the unpacked kernels there is no
//! `a == 0.0` fast path: `0·NaN` must stay `NaN`.
//!
//! The optional fused bias epilogue adds `bias[j]` to an output strip
//! immediately after the strip's final `k` panel — per element this is the
//! same `(Σₚ aₚ·bₚ) + bias` order as a separate full-output pass, so the
//! fused and unfused paths are bitwise identical too (while the strip is
//! still cache-hot, which is the point of fusing).

use crate::alloc;

/// Cache-block depth over the shared (`k`) dimension: one packed panel of
/// the right operand covers `KC` consecutive `p` values.
pub(crate) const KC: usize = 64;

/// Cache-block width over output columns: the packed right-operand panel
/// covers `NC` consecutive output columns (`NC` is a multiple of `NR`).
pub(crate) const NC: usize = 64;

/// Microkernel tile height (output rows held in registers).
pub(crate) const MR: usize = 4;

/// Microkernel tile width (output columns held in registers; a multiple of
/// the f32 SIMD width so the `j` lanes vectorize).
pub(crate) const NR: usize = 8;

/// How the operands of [`gemm_chunk`] are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Layout {
    /// `a: [m, k]` row-major, `b: [k, n]` row-major.
    Nn,
    /// `a: [m, k]` row-major, `b: [n, k]` row-major (used as `Bᵀ`).
    Nt,
    /// `a: [k, m]` row-major (used as `Aᵀ`, column reads), `b: [k, n]`.
    Tn,
}

/// One GEMM problem: `out[i, j] += Σₚ A'[i, p] · B'[p, j]` where `A'`/`B'`
/// are the layout-adjusted views of `a` and `b`.
pub(crate) struct Gemm<'a> {
    pub a: &'a [f32],
    pub b: &'a [f32],
    /// Shared dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Output rows of the *full* problem (`Tn` needs it to stride `a`).
    pub m: usize,
    pub layout: Layout,
}

/// Accumulates one `MR × NR` register tile over a packed `k` panel.
///
/// `apanel` is `pc × MR` (`p`-major), `btile` is `pc × NR` (`p`-major).
/// Every `c[i][j]` element receives its `pc` terms one at a time in
/// ascending `p` order — the bitwise-identity invariant lives here.
#[inline]
fn microkernel(apanel: &[f32], btile: &[f32], c: &mut [[f32; NR]; MR]) {
    for (a, b) in apanel.chunks_exact(MR).zip(btile.chunks_exact(NR)) {
        // Fixed-size views so the compiler fully unrolls the tile update
        // and keeps `c` in registers across the `p` loop.
        let a: &[f32; MR] = a.try_into().unwrap();
        let b: &[f32; NR] = b.try_into().unwrap();
        for ir in 0..MR {
            let av = a[ir];
            for jr in 0..NR {
                c[ir][jr] += av * b[jr];
            }
        }
    }
}

/// Packs the `pc × jc` panel of the layout-adjusted right operand starting
/// at `(p0, j0)` into `NR`-wide column tiles. Ragged tile columns are
/// zero-padded (their microkernel lanes are discarded on write-back).
fn pack_b(g: &Gemm<'_>, p0: usize, pc: usize, j0: usize, jc: usize, panel: &mut [f32]) {
    let jtiles = jc.div_ceil(NR);
    for jt in 0..jtiles {
        let jbase = j0 + jt * NR;
        let w = NR.min(j0 + jc - jbase);
        let tile = &mut panel[jt * pc * NR..(jt + 1) * pc * NR];
        match g.layout {
            Layout::Nn | Layout::Tn => {
                // b is [k, n]: rows of the panel are contiguous slices.
                for (p, dst) in tile.chunks_exact_mut(NR).enumerate() {
                    let src = &g.b[(p0 + p) * g.n + jbase..(p0 + p) * g.n + jbase + w];
                    dst[..w].copy_from_slice(src);
                    dst[w..].fill(0.0);
                }
            }
            Layout::Nt => {
                // b is [n, k] used as Bᵀ: read each of the `w` rows of b
                // contiguously, scattering into the p-major tile — this is
                // the transposing copy that de-strides the nt layout.
                for jr in 0..w {
                    let src = &g.b[(jbase + jr) * g.k + p0..(jbase + jr) * g.k + p0 + pc];
                    for (p, &v) in src.iter().enumerate() {
                        tile[p * NR + jr] = v;
                    }
                }
                for jr in w..NR {
                    for p in 0..pc {
                        tile[p * NR + jr] = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs the `mr`-row tile of the layout-adjusted left operand at global
/// row `row0`, `k` range `[p0, p0+pc)`, into the `p`-major `apanel`.
/// Ragged tile rows are zero-padded (results discarded on write-back).
fn pack_a(g: &Gemm<'_>, row0: usize, mr: usize, p0: usize, pc: usize, apanel: &mut [f32]) {
    match g.layout {
        Layout::Nn | Layout::Nt => {
            // a is [m, k]: each tile row is a contiguous slice of a.
            for ir in 0..mr {
                let src = &g.a[(row0 + ir) * g.k + p0..(row0 + ir) * g.k + p0 + pc];
                for (p, &v) in src.iter().enumerate() {
                    apanel[p * MR + ir] = v;
                }
            }
            for ir in mr..MR {
                for p in 0..pc {
                    apanel[p * MR + ir] = 0.0;
                }
            }
        }
        Layout::Tn => {
            // a is [k, m] used as Aᵀ: each p supplies a contiguous row
            // fragment — packing untransposes the column-major reads.
            for (p, dst) in apanel.chunks_exact_mut(MR).enumerate().take(pc) {
                let src = &g.a[(p0 + p) * g.m + row0..(p0 + p) * g.m + row0 + mr];
                dst[..mr].copy_from_slice(src);
                dst[mr..].fill(0.0);
            }
        }
    }
}

/// Runs the packed GEMM over output rows `[i0, i0 + rows)`, whose
/// row-major storage is `out` (`rows × n`). `bias`, when present, is a
/// length-`n` row fused into each output strip after its final `k` panel.
///
/// This is the serial per-chunk kernel the row-parallel pool dispatches;
/// with one thread it runs the whole output.
pub(crate) fn gemm_chunk(
    g: &Gemm<'_>,
    i0: usize,
    rows: usize,
    out: &mut [f32],
    bias: Option<&[f32]>,
) {
    if g.n == 0 || rows == 0 {
        return;
    }
    let mut apanel = [0.0f32; KC * MR];
    // B pack scratch comes from the arena: one KC × NC panel per call,
    // recycled across calls (and across threads' independent chunks).
    let mut bpanel = alloc::take_zeroed(KC * NC);
    for j0 in (0..g.n).step_by(NC) {
        let jc = NC.min(g.n - j0);
        let jtiles = jc.div_ceil(NR);
        for p0 in (0..g.k).step_by(KC) {
            let pc = KC.min(g.k - p0);
            pack_b(g, p0, pc, j0, jc, &mut bpanel[..jtiles * pc * NR]);
            for r0 in (0..rows).step_by(MR) {
                let mr = MR.min(rows - r0);
                pack_a(g, i0 + r0, mr, p0, pc, &mut apanel[..pc * MR]);
                for jt in 0..jtiles {
                    let jbase = j0 + jt * NR;
                    let w = NR.min(j0 + jc - jbase);
                    let mut c = [[0.0f32; NR]; MR];
                    for ir in 0..mr {
                        let src = &out[(r0 + ir) * g.n + jbase..(r0 + ir) * g.n + jbase + w];
                        c[ir][..w].copy_from_slice(src);
                    }
                    microkernel(
                        &apanel[..pc * MR],
                        &bpanel[jt * pc * NR..][..pc * NR],
                        &mut c,
                    );
                    for ir in 0..mr {
                        let dst = &mut out[(r0 + ir) * g.n + jbase..(r0 + ir) * g.n + jbase + w];
                        dst.copy_from_slice(&c[ir][..w]);
                    }
                }
            }
        }
        if let Some(bias) = bias {
            // Fused epilogue: the strip's k-accumulation just finished, so
            // per element this is exactly `matmul-result + bias` — bitwise
            // equal to the unfused second pass, but while the strip is hot.
            let brow = &bias[j0..j0 + jc];
            for r in 0..rows {
                let dst = &mut out[r * g.n + j0..r * g.n + j0 + jc];
                for (o, &bv) in dst.iter_mut().zip(brow) {
                    *o += bv;
                }
            }
        }
    }
    alloc::release(bpanel);
}
