//! Minimal binary tensor serialization (shape + little-endian `f32`s),
//! used by checkpointing.

use crate::{Result, Tensor, TensorError};

/// Appends a tensor to `buf`: `rows u32 | cols u32 | data f32-LE…`.
pub fn write_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    buf.extend_from_slice(&(t.rows() as u32).to_le_bytes());
    buf.extend_from_slice(&(t.cols() as u32).to_le_bytes());
    for &v in t.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reads a tensor written by [`write_tensor`], advancing `input`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on truncation.
pub fn read_tensor(input: &mut &[u8]) -> Result<Tensor> {
    let rows = read_u32(input)? as usize;
    let cols = read_u32(input)? as usize;
    let n = rows * cols;
    if input.len() < 4 * n {
        return Err(TensorError::InvalidArgument(format!(
            "truncated tensor payload: need {} bytes, have {}",
            4 * n,
            input.len()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        data.push(f32::from_le_bytes(
            input[4 * i..4 * i + 4].try_into().expect("4 bytes"),
        ));
    }
    *input = &input[4 * n..];
    Tensor::from_vec(rows, cols, data)
}

/// Reads a little-endian `u32`, advancing `input`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on truncation.
pub fn read_u32(input: &mut &[u8]) -> Result<u32> {
    if input.len() < 4 {
        return Err(TensorError::InvalidArgument("truncated u32".into()));
    }
    let v = u32::from_le_bytes(input[..4].try_into().expect("4 bytes"));
    *input = &input[4..];
    Ok(v)
}

/// Appends a little-endian `u32`.
pub fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, seeded_rng};

    #[test]
    fn tensor_round_trips() {
        let t = normal(&mut seeded_rng(1), 3, 5, 1.0);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t);
        let mut slice = buf.as_slice();
        let back = read_tensor(&mut slice).unwrap();
        assert_eq!(back, t);
        assert!(slice.is_empty());
    }

    #[test]
    fn multiple_tensors_in_one_buffer() {
        let a = normal(&mut seeded_rng(2), 2, 2, 1.0);
        let b = normal(&mut seeded_rng(3), 1, 4, 1.0);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &a);
        write_tensor(&mut buf, &b);
        let mut s = buf.as_slice();
        assert_eq!(read_tensor(&mut s).unwrap(), a);
        assert_eq!(read_tensor(&mut s).unwrap(), b);
    }

    #[test]
    fn truncation_is_detected() {
        let t = normal(&mut seeded_rng(4), 2, 2, 1.0);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t);
        buf.truncate(buf.len() - 1);
        let mut s = buf.as_slice();
        assert!(read_tensor(&mut s).is_err());
    }
}
