#![warn(missing_docs)]

//! CPU tensor substrate for the Vocabulary Parallelism reproduction.
//!
//! The paper's algorithms (online-softmax style communication-barrier
//! reduction in the partitioned output layer) are numerical re-orderings of
//! the softmax + cross-entropy computation; verifying them needs a real, if
//! small, tensor library with exact forward *and* backward passes. This crate
//! provides:
//!
//! * [`Tensor`] — a dense row-major 2-D `f32` tensor with shape checking.
//! * Matrix multiplication in all transpose layouts ([`Tensor::matmul`],
//!   [`Tensor::matmul_nt`], [`Tensor::matmul_tn`]).
//! * Reductions and the safe/online softmax family used by the paper
//!   ([`ops`]).
//! * Manual-backprop neural-network layers ([`nn`]): linear, layer-norm,
//!   GELU, causal multi-head attention, embeddings and softmax
//!   cross-entropy — everything needed to train a small GPT end to end.
//! * Optimizers ([`optim`]) and finite-difference gradient checking
//!   ([`gradcheck`]).
//! * A std-only persistent worker pool ([`pool`]) that parallelizes the
//!   matmul / softmax / layer-norm / GELU kernels across independent output
//!   rows — bitwise identical to the serial kernels for every thread count
//!   (configure with [`set_num_threads`] or `VP_THREADS`; `1` is exactly the
//!   serial code path).
//! * Polynomial vector math behind an explicit accuracy policy ([`mathx`]):
//!   the fast default swaps libm `exp`/`tanh` for bounded, auto-vectorizable
//!   approximations; `VP_FAST_MATH=0` pins the bitwise libm reference path.
//!
//! # Example
//!
//! ```
//! use vp_tensor::Tensor;
//!
//! let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), vp_tensor::TensorError>(())
//! ```

pub mod alloc;
mod error;
mod gemm;
pub mod gradcheck;
pub mod init;
pub mod io;
pub mod mathx;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod pool;
pub mod rng;
mod tensor;

pub use error::TensorError;
pub use pool::{num_threads, set_num_threads};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
