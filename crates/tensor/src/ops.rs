//! Reductions and the (safe / online) softmax family.
//!
//! These free functions are the numerical primitives that the paper's
//! partitioned output layer is built from: per-row maxima, shifted
//! exponential sums, locally-normalized softmax and the rescaling identity
//! (Equation 5)
//!
//! ```text
//! softmax(Y)_ij = softmax'(Y)_ij × (sum'_i · e^{m'_i − m_i}) / sum_i
//! ```
//!
//! that lets each vocabulary shard normalize with *local* statistics first
//! and correct with *global* statistics after the all-reduce.

use crate::{mathx, pool, Result, Tensor, TensorError};

/// Per-row maximum. Returns a vector of length `t.rows()`.
///
/// Rows of an empty-width tensor yield `f32::NEG_INFINITY`, matching the
/// identity element of `max` (an empty vocabulary shard contributes nothing
/// to the global maximum).
pub fn row_max(t: &Tensor) -> Vec<f32> {
    let rows = t.rows();
    let mut max = vec![f32::NEG_INFINITY; rows];
    pool::par_rows_mut(rows, t.len(), &mut max, |r0, _r1, chunk| {
        for (li, m) in chunk.iter_mut().enumerate() {
            *m = t
                .row(r0 + li)
                .iter()
                .fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        }
    });
    max
}

/// Per-row `Σ e^{x − m_r}` for the provided per-row shift `m`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `m.len() != t.rows()`.
pub fn row_sum_exp(t: &Tensor, m: &[f32]) -> Result<Vec<f32>> {
    if m.len() != t.rows() {
        return Err(TensorError::InvalidArgument(format!(
            "row_sum_exp: {} shifts for {} rows",
            m.len(),
            t.rows()
        )));
    }
    Ok((0..t.rows())
        .map(|r| t.row(r).iter().map(|&v| (v - m[r]).exp()).sum())
        .collect())
}

/// Per-row statistics of a *local* (shard) softmax.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxStats {
    /// Per-row maximum `m'_i` over the local columns.
    pub max: Vec<f32>,
    /// Per-row `sum'_i = Σ_k e^{Y_ik − m'_i}` over the local columns.
    pub sum: Vec<f32>,
}

/// Computes the locally-normalized softmax and its per-row statistics.
///
/// This is the `S`-pass kernel of Algorithms 1 and 2: each device computes
/// `softmax'(Y)` using only its own vocabulary shard, deferring global
/// normalization to the communication barrier.
///
/// For a zero-width shard the statistics are `(−∞, 0)`, the identity
/// elements of the max / sum reductions. A row whose entries are all `−∞`
/// (a fully-masked row) gets the same identity statistics and a *defined
/// zero row* of probabilities rather than `NaN` from `e^{−∞ − (−∞)}`; a
/// `NaN` anywhere in a row still poisons that row's output and sum.
///
/// The per-row maximum is computed *inside* the same parallel region as
/// the exponentials (one pool dispatch instead of a `row_max` dispatch
/// followed by a softmax dispatch) — per row the operations and their
/// order are unchanged, so outputs and statistics stay bitwise identical
/// to the two-pass form. The exponential follows the process accuracy
/// policy ([`crate::mathx`]): the reference path calls `f32::exp` exactly
/// as before, the fast path uses the bounded polynomial [`mathx::exp`].
pub fn local_softmax(t: &Tensor) -> (Tensor, SoftmaxStats) {
    let (rows, cols) = t.shape();
    let mut out = Tensor::zeros(rows, cols);
    let mut sum = vec![0.0f32; rows];
    let mut max = vec![f32::NEG_INFINITY; rows];
    let fast = mathx::fast_math();
    let work = t.len().saturating_mul(8);
    pool::par_rows_mut3(
        rows,
        work,
        out.data_mut(),
        &mut sum,
        &mut max,
        |r0, _r1, out_chunk, sum_chunk, max_chunk| {
            for (li, s_out) in sum_chunk.iter_mut().enumerate() {
                let r = r0 + li;
                let src = t.row(r);
                let m = src.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                max_chunk[li] = m;
                let dst = &mut out_chunk[li * cols..(li + 1) * cols];
                if m == f32::NEG_INFINITY {
                    // Empty or all-(−∞) row: identity stats, defined zero
                    // row — unless a NaN lurks (the max ignores NaN), in
                    // which case the poison must survive.
                    if src.iter().any(|v| v.is_nan()) {
                        dst.fill(f32::NAN);
                        *s_out = f32::NAN;
                    }
                    continue;
                }
                // Exponentiate first, sum second: the running `s += e` has
                // a loop-carried dependence that would serialize the exp
                // loop, so a fused single pass cannot vectorize. Two passes
                // add the identical `e` values in the identical ascending
                // index order — same bits — while the exp loop is free to
                // run 16 lanes wide.
                if fast {
                    for (d, &v) in dst.iter_mut().zip(src) {
                        *d = mathx::exp(v - m);
                    }
                } else {
                    for (d, &v) in dst.iter_mut().zip(src) {
                        *d = (v - m).exp();
                    }
                }
                let mut s = 0.0f32;
                for &e in dst.iter() {
                    s += e;
                }
                if s > 0.0 {
                    let inv = 1.0 / s;
                    for d in dst.iter_mut() {
                        *d *= inv;
                    }
                }
                *s_out = s;
            }
        },
    );
    (out, SoftmaxStats { max, sum })
}

/// Rescales a local softmax into the global softmax (the paper's Eq. 5).
///
/// `local` holds `softmax'(Y)` for one shard with statistics
/// (`local_max`, `local_sum`); (`global_max`, `global_sum`) are the
/// all-reduced statistics. The correction factor per row is
/// `local_sum · e^{local_max − global_max} / global_sum`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if any statistics vector has a
/// length different from `local.rows()`, or if any global statistic is
/// invalid (`NaN`, or a negative sum) — dividing by such a `global_sum`
/// would manufacture `NaN` probabilities out of finite inputs. A global sum
/// of exactly `0` (every shard of the row was empty or fully masked) is
/// *valid* and yields a defined zero row, matching [`local_softmax`].
pub fn rescale_softmax(
    local: &mut Tensor,
    local_stats: &SoftmaxStats,
    global_max: &[f32],
    global_sum: &[f32],
) -> Result<()> {
    let rows = local.rows();
    if local_stats.max.len() != rows
        || local_stats.sum.len() != rows
        || global_max.len() != rows
        || global_sum.len() != rows
    {
        return Err(TensorError::InvalidArgument(
            "rescale_softmax: statistics length mismatch".into(),
        ));
    }
    let mut factors = vec![0.0f32; rows];
    for (r, factor) in factors.iter_mut().enumerate() {
        let (gm, gs) = (global_max[r], global_sum[r]);
        if gm.is_nan() || gs.is_nan() || gs < 0.0 {
            return Err(TensorError::InvalidArgument(format!(
                "rescale_softmax: invalid global statistics at row {r} (max {gm}, sum {gs})"
            )));
        }
        *factor = softmax_correction(local_stats.max[r], local_stats.sum[r], gm, gs);
    }
    let cols = local.cols();
    let factors_ref = &factors;
    pool::par_rows_mut(
        rows,
        rows.saturating_mul(cols),
        local.data_mut(),
        |r0, _r1, chunk| {
            for (li, row) in chunk.chunks_mut(cols.max(1)).enumerate() {
                let factor = factors_ref[r0 + li];
                for v in row {
                    *v *= factor;
                }
            }
        },
    );
    Ok(())
}

/// The per-row correction factor of Eq. 5:
/// `sum' · e^{m' − m} / sum`, with 0 for empty or fully-masked shards.
///
/// Guarded against degenerate statistics: a non-positive (or `NaN`) local
/// or global sum yields a factor of exactly `0` instead of dividing by zero
/// — an all-`−∞` logits row (global sum 0) therefore rescales to a defined
/// zero row rather than `NaN` probabilities.
#[inline]
pub fn softmax_correction(local_max: f32, local_sum: f32, global_max: f32, global_sum: f32) -> f32 {
    let degenerate = |v: f32| v <= 0.0 || v.is_nan();
    if degenerate(local_sum) || degenerate(global_sum) {
        return 0.0;
    }
    local_sum * (local_max - global_max).exp() / global_sum
}

/// Numerically-safe softmax over every row, returning a new tensor.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let (out, _) = local_softmax(t);
    out
}

/// Per-row `log Σ e^{x}` computed stably.
pub fn log_sum_exp_rows(t: &Tensor) -> Vec<f32> {
    let max = row_max(t);
    (0..t.rows())
        .map(|r| {
            let m = max[r];
            if m == f32::NEG_INFINITY {
                return f32::NEG_INFINITY;
            }
            let s: f32 = t.row(r).iter().map(|&v| (v - m).exp()).sum();
            m + s.ln()
        })
        .collect()
}

/// Mean negative log-likelihood of `labels` under row-wise softmax of
/// `logits` (the standard language-modelling loss).
///
/// # Errors
///
/// Returns [`TensorError::OutOfBounds`] if any label is `>= logits.cols()`
/// or [`TensorError::InvalidArgument`] if `labels.len() != logits.rows()`.
pub fn cross_entropy_mean(logits: &Tensor, labels: &[usize]) -> Result<f64> {
    if labels.len() != logits.rows() {
        return Err(TensorError::InvalidArgument(format!(
            "cross_entropy: {} labels for {} rows",
            labels.len(),
            logits.rows()
        )));
    }
    let lse = log_sum_exp_rows(logits);
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        if label >= logits.cols() {
            return Err(TensorError::OutOfBounds {
                op: "cross_entropy",
                index: label,
                bound: logits.cols(),
            });
        }
        total += (lse[r] - logits.at(r, label)) as f64;
    }
    Ok(total / labels.len() as f64)
}

/// Per-row index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if the tensor has zero columns (no maximum exists).
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert!(t.cols() > 0, "argmax of an empty row");
    (0..t.rows())
        .map(|r| {
            let row = t.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate().skip(1) {
                // Strict comparison keeps the first maximum on ties.
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Builds the one-hot ground-truth matrix `G` (`G[i, g_i] = 1`) used in the
/// paper's backward formulas.
///
/// # Errors
///
/// Returns [`TensorError::OutOfBounds`] if any label is `>= cols`.
pub fn one_hot(labels: &[usize], cols: usize) -> Result<Tensor> {
    let mut g = Tensor::zeros(labels.len(), cols);
    for (r, &label) in labels.iter().enumerate() {
        if label >= cols {
            return Err(TensorError::OutOfBounds {
                op: "one_hot",
                index: label,
                bound: cols,
            });
        }
        *g.at_mut(r, label) = 1.0;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Tensor {
        Tensor::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 100.0, 100.0]).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let s = softmax_rows(&toy());
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        // The two tied large logits split the mass evenly.
        assert!((s.at(1, 2) - 0.5).abs() < 1e-6);
        assert!((s.at(1, 3) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sharded_softmax_rescaled_matches_full() {
        let t = toy();
        let full = softmax_rows(&t);
        // Split columns into two shards, compute local softmax, then merge
        // statistics as the all-reduce would and rescale.
        let a = t.slice_cols(0, 1).unwrap();
        let b = t.slice_cols(1, 4).unwrap();
        let (mut sa, st_a) = local_softmax(&a);
        let (mut sb, st_b) = local_softmax(&b);
        let gmax: Vec<f32> = st_a
            .max
            .iter()
            .zip(&st_b.max)
            .map(|(&x, &y)| x.max(y))
            .collect();
        let gsum: Vec<f32> = (0..2)
            .map(|r| {
                st_a.sum[r] * (st_a.max[r] - gmax[r]).exp()
                    + st_b.sum[r] * (st_b.max[r] - gmax[r]).exp()
            })
            .collect();
        rescale_softmax(&mut sa, &st_a, &gmax, &gsum).unwrap();
        rescale_softmax(&mut sb, &st_b, &gmax, &gsum).unwrap();
        for r in 0..2 {
            assert!((sa.at(r, 0) - full.at(r, 0)).abs() < 1e-6);
            for c in 0..3 {
                assert!((sb.at(r, c) - full.at(r, c + 1)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_shard_has_identity_stats() {
        let empty = Tensor::zeros(3, 0);
        let (_, stats) = local_softmax(&empty);
        assert!(stats.max.iter().all(|&m| m == f32::NEG_INFINITY));
        assert!(stats.sum.iter().all(|&s| s == 0.0));
        assert_eq!(softmax_correction(f32::NEG_INFINITY, 0.0, 5.0, 2.0), 0.0);
    }

    #[test]
    fn all_neg_inf_row_yields_defined_zero_row() {
        // Regression: `e^{−∞ − (−∞)}` is NaN, so a fully-masked logits row
        // used to produce NaN probabilities and NaN statistics, which then
        // poisoned the Eq.-5 rescale of *every* shard via the global sum.
        let t = Tensor::from_vec(2, 3, vec![f32::NEG_INFINITY; 6]).unwrap();
        let (probs, stats) = local_softmax(&t);
        assert!(probs.data().iter().all(|&v| v == 0.0));
        assert!(stats.max.iter().all(|&m| m == f32::NEG_INFINITY));
        assert!(stats.sum.iter().all(|&s| s == 0.0));
        // The zero global sum rescales to a defined zero row, not NaN.
        let mut local = probs;
        rescale_softmax(&mut local, &stats, &stats.max, &stats.sum).unwrap();
        assert!(local.data().iter().all(|&v| v == 0.0));
        assert_eq!(
            softmax_correction(f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY, 0.0),
            0.0
        );
    }

    #[test]
    fn nan_logits_still_poison_local_softmax() {
        let t = Tensor::from_vec(2, 2, vec![f32::NAN, f32::NEG_INFINITY, 1.0, 2.0]).unwrap();
        let (probs, stats) = local_softmax(&t);
        // Row 0 is poisoned (max ignores NaN, so it must be re-detected).
        assert!(probs.at(0, 0).is_nan() && probs.at(0, 1).is_nan());
        assert!(stats.sum[0].is_nan());
        // Row 1 is unaffected.
        assert!((probs.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rescale_rejects_invalid_global_statistics() {
        let t = Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let (mut probs, stats) = local_softmax(&t);
        let err = rescale_softmax(&mut probs, &stats, &[2.0], &[f32::NAN]);
        assert!(matches!(err, Err(TensorError::InvalidArgument(_))));
        let err = rescale_softmax(&mut probs, &stats, &[f32::NAN], &[1.0]);
        assert!(matches!(err, Err(TensorError::InvalidArgument(_))));
        let err = rescale_softmax(&mut probs, &stats, &[2.0], &[-1.0]);
        assert!(matches!(err, Err(TensorError::InvalidArgument(_))));
    }

    #[test]
    fn zero_width_shard_rescales_without_error() {
        // The zero-width-shard path: rows exist but the shard owns no
        // columns. Stats are the (−∞, 0) identities and rescaling against
        // any valid global statistics is a no-op.
        let empty = Tensor::zeros(3, 0);
        let (mut probs, stats) = local_softmax(&empty);
        rescale_softmax(&mut probs, &stats, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(probs.shape(), (3, 0));
        // Correction for an empty shard against a live global row is 0.
        assert_eq!(softmax_correction(f32::NEG_INFINITY, 0.0, 1.0, 4.0), 0.0);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let logits = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let p = softmax_rows(&logits);
        let expected = -(p.at(0, 1) as f64).ln();
        let got = cross_entropy_mean(&logits, &[1]).unwrap();
        assert!((got - expected).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let logits = Tensor::zeros(2, 3);
        assert!(cross_entropy_mean(&logits, &[0]).is_err());
        assert!(cross_entropy_mean(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn one_hot_basic() {
        let g = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(g.data(), &[0., 0., 1., 1., 0., 0.]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn log_sum_exp_is_shift_invariant() {
        let t = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let shifted = t.map(|v| v + 1000.0);
        let a = log_sum_exp_rows(&t)[0];
        let b = log_sum_exp_rows(&shifted)[0];
        assert!((b - a - 1000.0).abs() < 1e-3);
        assert!(b.is_finite());
    }

    #[test]
    fn argmax_rows_picks_first_maximum() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 5.0, 5.0, -1.0, -3.0, -2.0]).unwrap();
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn row_sum_exp_validates_shift_length() {
        let t = Tensor::zeros(2, 2);
        assert!(row_sum_exp(&t, &[0.0]).is_err());
    }
}
