use std::fmt;

/// Error type for all fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The provided buffer length did not match `rows * cols`.
    BadBuffer {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// An argument was invalid for reasons other than shape (e.g. a zero
    /// dimension where a positive one is required).
    InvalidArgument(String),
    /// A bounded resource pool ran out (e.g. the paged KV block pool hit
    /// its block capacity). Callers are expected to back off — a serving
    /// engine turns this into admission backpressure, never a panic.
    Exhausted {
        /// Name of the exhausted resource.
        resource: &'static str,
        /// The pool's hard capacity in resource units.
        capacity: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape ({expected} elements)"
                )
            }
            TensorError::OutOfBounds { op, index, bound } => {
                write!(
                    f,
                    "index {index} out of bounds for {op} (must be < {bound})"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::Exhausted { resource, capacity } => {
                write!(f, "{resource} exhausted (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for TensorError {}
