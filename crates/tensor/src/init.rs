//! Seeded parameter initializers.
//!
//! All randomness in the workspace flows through explicit [`Rng`]
//! instances so that the pipeline-parallel runtime and the single-device
//! reference build *bit-identical* initial weights (a precondition for the
//! paper's convergence-equivalence evaluation, Appendix E).

use crate::rng::{Rng, StdRng};
use crate::Tensor;

/// Returns a deterministic RNG for the given seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a `rows×cols` tensor from `N(0, std²)` using the Box–Muller
/// transform (keeps us independent of `rand_distr`).
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    for v in t.data_mut() {
        *v = std * sample_standard_normal(rng);
    }
    t
}

/// Xavier/Glorot-style initialization: `N(0, 2/(fan_in + fan_out))`.
pub fn xavier(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    normal(rng, rows, cols, std)
}

/// GPT-2 style initialization: `N(0, 0.02²)`.
pub fn gpt(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    normal(rng, rows, cols, 0.02)
}

fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // Box–Muller; discard the second variate for simplicity.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = normal(&mut seeded_rng(7), 4, 4, 1.0);
        let b = normal(&mut seeded_rng(7), 4, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal(&mut seeded_rng(1), 4, 4, 1.0);
        let b = normal(&mut seeded_rng(2), 4, 4, 1.0);
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(&mut seeded_rng(3), 100, 100, 1.0);
        let n = t.len() as f64;
        let mean = t.sum() / n;
        let var = t
            .data()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_scales_with_fan() {
        let small = xavier(&mut seeded_rng(4), 10, 10);
        let large = xavier(&mut seeded_rng(4), 1000, 1000);
        let var =
            |t: &Tensor| t.data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / t.len() as f64;
        assert!(var(&small) > var(&large));
    }
}
