//! A thread-safe, size-class buffer arena recycling tensor backing stores.
//!
//! Every op in this crate returns a fresh [`crate::Tensor`], and a pipeline
//! iteration runs thousands of ops — without recycling, each microbatch
//! churns the allocator with short-lived multi-kilobyte `Vec<f32>`s. The
//! arena keeps released backing buffers in power-of-two size classes and
//! hands them back to subsequent allocations of a compatible size, so a
//! steady-state training iteration (same shapes as the previous one)
//! allocates **approximately zero** new memory.
//!
//! # Numerics contract
//!
//! Recycling is invisible to the math: a pooled buffer is always
//! re-initialized exactly as a fresh one would be (`take_zeroed` zero-fills,
//! `take_copy` copies) before any kernel reads it, so pooled and fresh runs
//! produce **bitwise identical** results. `crates/tensor/tests/arena.rs`
//! and the runtime's pooled-vs-fresh loss-curve test pin this down.
//!
//! # Configuration and observability
//!
//! * `VP_ARENA=0` (or [`set_enabled`]`(false)`) bypasses the arena entirely:
//!   allocations come straight from the system allocator and releases drop.
//! * [`stats`] exposes monotone `fresh` / `reuse` counters plus the live
//!   `outstanding` and `cached` buffer counts; [`reset_counters`] rebases
//!   the monotone counters (the pool contents survive) so a bench can
//!   measure exactly one phase — this is what `repro trainbench` gates on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest bucketed capacity (floats). Requests below this still round up
/// to it, so tiny tensors share one class instead of fragmenting the pool.
const MIN_CLASS: usize = 64;

/// Number of power-of-two size classes (`MIN_CLASS << (NUM_CLASSES - 1)`
/// caps at 2³³ floats — far beyond any tensor in this workspace).
const NUM_CLASSES: usize = 28;

/// Per-class cap on cached buffers: beyond it, released buffers are
/// genuinely freed so a one-off allocation spike cannot pin memory forever.
const MAX_CACHED_PER_CLASS: usize = 1024;

/// Snapshot of the arena's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Buffers allocated from the system allocator (pool miss) since the
    /// last [`reset_counters`].
    pub fresh: u64,
    /// Buffers served from the pool (pool hit) since the last
    /// [`reset_counters`].
    pub reuse: u64,
    /// Buffers currently taken and not yet released (live tensors).
    pub outstanding: u64,
    /// Buffers currently parked in the pool.
    pub cached: u64,
}

impl ArenaStats {
    /// Fraction of allocations served from the pool (`0.0` when idle).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.fresh + self.reuse;
        if total == 0 {
            0.0
        } else {
            self.reuse as f64 / total as f64
        }
    }
}

struct Arena {
    classes: Vec<Mutex<Vec<Vec<f32>>>>,
    fresh: AtomicU64,
    reuse: AtomicU64,
    taken: AtomicU64,
    released: AtomicU64,
    cached: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_CHECKED: OnceLock<()> = OnceLock::new();

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        classes: (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
        fresh: AtomicU64::new(0),
        reuse: AtomicU64::new(0),
        taken: AtomicU64::new(0),
        released: AtomicU64::new(0),
        cached: AtomicU64::new(0),
    })
}

/// Whether the arena is currently recycling buffers.
///
/// Resolves `VP_ARENA` on first use: `0`/`off`/`false` disables recycling
/// process-wide (useful for the pooled-vs-fresh equivalence gates).
pub fn enabled() -> bool {
    ENV_CHECKED.get_or_init(|| {
        if let Ok(v) = std::env::var("VP_ARENA") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                ENABLED.store(false, Ordering::Release);
            }
        }
    });
    ENABLED.load(Ordering::Acquire)
}

/// Enables or disables recycling process-wide (overrides `VP_ARENA`).
///
/// Disabling does not drop already-cached buffers; call [`trim`] for that.
pub fn set_enabled(on: bool) {
    // Resolve the env var first so a later `enabled()` cannot overwrite
    // this explicit setting.
    enabled();
    ENABLED.store(on, Ordering::Release);
}

/// The size class serving requests of `len` floats, or `None` when `len`
/// exceeds the largest class (the buffer then bypasses the pool).
fn class_for_len(len: usize) -> Option<usize> {
    let cap = len.max(MIN_CLASS).next_power_of_two();
    let class = cap.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize;
    (class < NUM_CLASSES).then_some(class)
}

/// The size class a buffer of `capacity` can serve, or `None` when it is
/// too small or too large to bucket.
fn class_for_capacity(capacity: usize) -> Option<usize> {
    if capacity < MIN_CLASS {
        return None;
    }
    // Bucket by the largest class the capacity fully covers, so every
    // buffer in class `c` has `capacity >= MIN_CLASS << c`.
    let class =
        (usize::BITS - 1 - capacity.leading_zeros()) as usize - MIN_CLASS.trailing_zeros() as usize;
    Some(class.min(NUM_CLASSES - 1))
}

/// Takes a buffer with `capacity >= len` and `len == 0` — the caller must
/// fill it before any kernel reads it. Counts a pool hit or miss.
pub fn take_raw(len: usize) -> Vec<f32> {
    let a = arena();
    if enabled() {
        if let Some(class) = class_for_len(len) {
            let recycled = a.classes[class].lock().unwrap().pop();
            if let Some(mut v) = recycled {
                a.cached.fetch_sub(1, Ordering::Relaxed);
                a.reuse.fetch_add(1, Ordering::Relaxed);
                a.taken.fetch_add(1, Ordering::Relaxed);
                v.clear();
                return v;
            }
            a.fresh.fetch_add(1, Ordering::Relaxed);
            a.taken.fetch_add(1, Ordering::Relaxed);
            return Vec::with_capacity(len.max(MIN_CLASS).next_power_of_two());
        }
    }
    a.fresh.fetch_add(1, Ordering::Relaxed);
    a.taken.fetch_add(1, Ordering::Relaxed);
    Vec::with_capacity(len)
}

/// Takes a buffer of `len` floats, all zero — the pooled equivalent of
/// `vec![0.0; len]`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_raw(len);
    v.resize(len, 0.0);
    v
}

/// Takes a buffer of `len` floats filled with `value`.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = take_raw(len);
    v.resize(len, value);
    v
}

/// Takes a buffer holding a copy of `src` — the pooled equivalent of
/// `src.to_vec()` (no intermediate zero-fill).
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take_raw(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a backing buffer to the pool (or drops it when the arena is
/// disabled, the buffer is unbucketable, or its class is full).
///
/// Zero-capacity buffers are ignored — they carry no allocation.
pub fn release(v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    let a = arena();
    a.released.fetch_add(1, Ordering::Relaxed);
    if !enabled() {
        return;
    }
    let Some(class) = class_for_capacity(v.capacity()) else {
        return;
    };
    let mut bucket = a.classes[class].lock().unwrap();
    if bucket.len() < MAX_CACHED_PER_CLASS {
        bucket.push(v);
        a.cached.fetch_add(1, Ordering::Relaxed);
    }
}

/// Current counter snapshot.
pub fn stats() -> ArenaStats {
    let a = arena();
    let taken = a.taken.load(Ordering::Relaxed);
    let released = a.released.load(Ordering::Relaxed);
    ArenaStats {
        fresh: a.fresh.load(Ordering::Relaxed),
        reuse: a.reuse.load(Ordering::Relaxed),
        outstanding: taken.saturating_sub(released),
        cached: a.cached.load(Ordering::Relaxed),
    }
}

/// Rebases the monotone `fresh` / `reuse` counters to zero (pool contents
/// and the `outstanding` / `cached` gauges are untouched), so a caller can
/// measure exactly one phase of a run.
pub fn reset_counters() {
    let a = arena();
    a.fresh.store(0, Ordering::Relaxed);
    a.reuse.store(0, Ordering::Relaxed);
}

/// Drops every cached buffer, returning the memory to the allocator.
pub fn trim() {
    let a = arena();
    for class in &a.classes {
        let mut bucket = class.lock().unwrap();
        a.cached.fetch_sub(bucket.len() as u64, Ordering::Relaxed);
        bucket.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Serializes tests that toggle the process-global arena state.
    fn arena_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn classes_cover_small_and_large_requests() {
        assert_eq!(class_for_len(1), Some(0));
        assert_eq!(class_for_len(MIN_CLASS), Some(0));
        assert_eq!(class_for_len(MIN_CLASS + 1), Some(1));
        assert_eq!(class_for_len(1 << 20), Some(20 - 6));
        // A buffer's serving class never exceeds what its capacity covers.
        for cap in [64, 65, 127, 128, 4096, 5000] {
            let c = class_for_capacity(cap).unwrap();
            assert!(cap >= MIN_CLASS << c, "cap {cap} class {c}");
        }
        assert_eq!(class_for_capacity(63), None);
    }

    #[test]
    fn release_then_take_reuses_the_buffer() {
        let _guard = arena_lock();
        set_enabled(true);
        let v = take_zeroed(1000);
        let cap = v.capacity();
        release(v);
        let before = stats();
        let v2 = take_zeroed(900); // same class (1024)
        assert_eq!(v2.capacity(), cap, "must come from the pool");
        let after = stats();
        assert_eq!(after.reuse, before.reuse + 1);
        assert_eq!(after.fresh, before.fresh);
        assert!(v2.iter().all(|&x| x == 0.0));
        release(v2);
    }

    #[test]
    fn disabled_arena_bypasses_the_pool() {
        let _guard = arena_lock();
        set_enabled(false);
        let v = take_filled(512, 3.0);
        assert!(v.iter().all(|&x| x == 3.0));
        let cached_before = stats().cached;
        release(v);
        assert_eq!(stats().cached, cached_before, "release must drop");
        set_enabled(true);
    }

    #[test]
    fn take_copy_round_trips_contents() {
        let _guard = arena_lock();
        set_enabled(true);
        let src = [1.0f32, -2.5, f32::NAN, 0.0];
        let v = take_copy(&src);
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].to_bits(), src[0].to_bits());
        assert_eq!(v[2].to_bits(), src[2].to_bits());
        release(v);
        // A recycled buffer must not leak previous contents through
        // take_zeroed.
        let v2 = take_zeroed(4);
        assert!(v2.iter().all(|&x| x == 0.0));
        release(v2);
    }

    #[test]
    fn trim_empties_the_cache() {
        let _guard = arena_lock();
        set_enabled(true);
        release(take_zeroed(128));
        assert!(stats().cached > 0);
        trim();
        assert_eq!(stats().cached, 0);
    }

    #[test]
    fn counters_reset_rebase_only_monotone_counts() {
        let _guard = arena_lock();
        set_enabled(true);
        let v = take_zeroed(256);
        reset_counters();
        let s = stats();
        assert_eq!((s.fresh, s.reuse), (0, 0));
        assert!(s.outstanding >= 1);
        release(v);
    }
}
