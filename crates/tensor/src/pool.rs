//! A persistent, std-only worker pool for row-parallel kernels.
//!
//! The workspace is deliberately dependency-free, so this module provides
//! the small slice of rayon that the numeric kernels need: a global pool of
//! worker threads plus `par_rows_mut*` entry points that partition the
//! *output rows* of a kernel into contiguous chunks and execute the chunks
//! concurrently.
//!
//! # Determinism contract
//!
//! Parallelism is only ever across **independent output rows**. Every row is
//! produced by exactly one task running exactly the serial per-row kernel, so
//! the floating-point reduction order of each output element is identical for
//! every thread count — results are **bitwise identical** to the serial
//! kernels. This preserves the repo's bit-equivalence story (the paper's
//! §6.5 / Figure 17 claims rest on the numerics being a pure reordering of
//! *communication*, never of per-element arithmetic).
//!
//! # Configuration
//!
//! The thread count is resolved, in order, from:
//!
//! 1. the last call to [`set_num_threads`],
//! 2. the `VP_THREADS` environment variable (read once, lazily),
//! 3. [`std::thread::available_parallelism`].
//!
//! A thread count of 1 bypasses the pool entirely: the caller runs the
//! serial kernel inline, making `VP_THREADS=1` *exactly* the serial code
//! path.
//!
//! Independently, the *dispatch heuristic* caps the worker count at the
//! machine's probed core count ([`detect_cores`]; override with `VP_CORES`
//! or [`set_assumed_cores`]): oversubscribing a core with workers only adds
//! queueing and context-switch overhead — the kernel bench measured every
//! kernel *losing* to serial (speedup 0.74–0.98) with 4 threads on a 1-core
//! box. On a single-core machine every kernel therefore takes the serial
//! path, whatever `VP_THREADS` says.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A queued unit of work (one row chunk, latch bookkeeping included).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A not-yet-lifetime-erased chunk task borrowed from a dispatching caller.
type ScopedTask<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Kernels with fewer scalar operations than this run serially: below it,
/// dispatch overhead (queueing + latch wake-up) dominates any speedup.
const MIN_PARALLEL_WORK: usize = 16 * 1024;

/// Kernels spanning fewer output rows than this run serially even when the
/// work estimate is large: with a handful of chunks the per-task queueing
/// and latch wake-ups dominate — the kernel bench showed speedup < 1.0 for
/// every sub-8-row dispatch measured.
const MIN_PARALLEL_ROWS: usize = 8;

/// Configured thread count; 0 means "not resolved yet".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Assumed number of physical cores; 0 means "detect".
static ASSUMED_CORES: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of threads used by the parallel kernels (min 1).
///
/// Takes effect for subsequent kernel calls, process-wide. `1` disables the
/// pool and runs every kernel serially on the calling thread.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n.max(1), Ordering::Release);
}

/// Returns the current kernel thread count.
///
/// Resolves `VP_THREADS` / the machine's available parallelism on first use
/// (see the module docs for the full precedence).
pub fn num_threads() -> usize {
    match CONFIGURED.load(Ordering::Acquire) {
        0 => {
            let n = default_threads();
            // A racing `set_num_threads` wins; only fill in the default once.
            let _ = CONFIGURED.compare_exchange(0, n, Ordering::AcqRel, Ordering::Acquire);
            CONFIGURED.load(Ordering::Acquire)
        }
        n => n,
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("VP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cached `VP_CORES` resolution: [`ENV_UNRESOLVED`] = not looked up yet,
/// [`ENV_UNSET`] = looked up but absent/invalid, anything else = the parsed
/// value. [`set_assumed_cores`]`(0)` resets it to unresolved so the next
/// [`assumed_cores`] call re-reads the environment.
static ENV_CORES: AtomicUsize = AtomicUsize::new(ENV_UNRESOLVED);
const ENV_UNRESOLVED: usize = 0;
const ENV_UNSET: usize = usize::MAX;

/// Number of cores the dispatch heuristic assumes the machine has.
///
/// Resolved, in order, from the last [`set_assumed_cores`] call, the
/// `VP_CORES` environment variable, and the cached [`detect_cores`] probe.
/// The env lookup is cached after the first kernel dispatch (it sits on
/// every kernel's hot path); changing `VP_CORES` mid-process takes effect
/// only after a [`set_assumed_cores`]`(0)`, which drops the cache and
/// re-reads the environment on the next call.
pub fn assumed_cores() -> usize {
    match ASSUMED_CORES.load(Ordering::Acquire) {
        0 => {
            let env = match ENV_CORES.load(Ordering::Acquire) {
                ENV_UNRESOLVED => {
                    let v = std::env::var("VP_CORES")
                        .ok()
                        .and_then(|v| v.trim().parse::<usize>().ok())
                        .filter(|&n| (1..ENV_UNSET).contains(&n))
                        .unwrap_or(ENV_UNSET);
                    ENV_CORES.store(v, Ordering::Release);
                    v
                }
                v => v,
            };
            if env == ENV_UNSET {
                detect_cores()
            } else {
                env
            }
        }
        n => n,
    }
}

/// Best-effort core-count probe (cached after the first call).
///
/// [`std::thread::available_parallelism`] alone under-reports inside
/// containers: cgroup CPU quotas and affinity masks frequently pin it to 1
/// even when the machine has more cores, which starves the dispatch
/// heuristic into the serial path for every kernel. This probe additionally
/// consults the Linux topology files (`/sys/devices/system/cpu/present`,
/// `/sys/devices/system/cpu/online`, `/proc/cpuinfo`), taking the largest
/// answer any of them gives — then **caps** that at the cgroup CPU quota
/// (v2 `cpu.max`, v1 `cpu.cfs_quota_us`/`cpu.cfs_period_us`, rounded up),
/// with a floor of 1. The direction matters: inside a quota-limited
/// container the topology files describe the *host* (a 2-CPU-quota pod on
/// a 64-core box reads `present: 0-63`), and only the quota says how much
/// CPU the scheduler will actually grant — treating it as another
/// maximizing source would re-create the oversubscription this probe
/// exists to prevent.
///
/// The probe reads `/proc` and `/sys`, so the result is computed once and
/// cached — the dispatch heuristic consults it on **every** kernel call,
/// and re-reading `/proc/cpuinfo` per dispatch measurably taxed the
/// row-wise kernels (part of the sub-1.0 threaded speedups the kernel
/// bench recorded).
pub fn detect_cores() -> usize {
    static PROBED: OnceLock<usize> = OnceLock::new();
    *PROBED.get_or_init(probe_cores)
}

fn probe_cores() -> usize {
    let mut best = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    #[cfg(target_os = "linux")]
    {
        for topology in [
            "/sys/devices/system/cpu/present",
            "/sys/devices/system/cpu/online",
        ] {
            if let Ok(s) = std::fs::read_to_string(topology) {
                if let Some(n) = parse_cpu_list(&s) {
                    best = best.max(n);
                }
            }
        }
        if let Ok(s) = std::fs::read_to_string("/proc/cpuinfo") {
            let n = s
                .lines()
                .filter(|l| l.starts_with("processor") && l.contains(':'))
                .count();
            best = best.max(n);
        }
        // A cgroup CPU quota *caps* the topology answer: the sysfs/cpuinfo
        // sources above describe the host, but a quota-limited container
        // only ever gets `quota/period` CPUs of runtime, so threading past
        // it is guaranteed oversubscription. A finite quota can therefore
        // only lower the probe, never raise it.
        let mut quota = usize::MAX;
        // cgroup v2: "<quota> <period>" or "max <period>".
        if let Ok(s) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
            if let Some(n) = parse_cgroup_cpu_max(&s) {
                quota = quota.min(n);
            }
        }
        // cgroup v1: separate quota/period files (-1 quota = unlimited).
        if let (Ok(q), Ok(p)) = (
            std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us"),
            std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us"),
        ) {
            if let Some(n) = parse_cgroup_quota(&q, &p) {
                quota = quota.min(n);
            }
        }
        best = best.min(quota);
    }
    best.max(1)
}

/// Parses cgroup v2 `cpu.max` (`"400000 100000"` → 4 CPUs, rounded up;
/// `"max …"` → no quota, `None`).
fn parse_cgroup_cpu_max(s: &str) -> Option<usize> {
    let mut it = s.split_whitespace();
    let quota = it.next()?;
    let period = it.next().unwrap_or("100000");
    parse_cgroup_quota(quota, period)
}

/// Converts a quota/period pair of µs strings into a CPU count (rounded
/// up). Unlimited quotas (`"max"`, negative) yield `None`.
fn parse_cgroup_quota(quota: &str, period: &str) -> Option<usize> {
    let quota = quota.trim().parse::<u64>().ok().filter(|&q| q > 0)?;
    let period = period.trim().parse::<u64>().ok().filter(|&p| p > 0)?;
    Some(
        usize::try_from(quota.div_ceil(period))
            .unwrap_or(usize::MAX)
            .max(1),
    )
}

/// Parses a kernel CPU list (`"0-3"`, `"0"`, `"0-1,4-7"`) into a CPU count.
fn parse_cpu_list(s: &str) -> Option<usize> {
    let mut total = 0usize;
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            return None;
        }
        total += match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (
                    lo.trim().parse::<usize>().ok()?,
                    hi.trim().parse::<usize>().ok()?,
                );
                hi.checked_sub(lo)? + 1
            }
            None => {
                part.parse::<usize>().ok()?;
                1
            }
        };
    }
    (total > 0).then_some(total)
}

/// Overrides the core count the dispatch heuristic assumes (`0` restores
/// detection, re-reading `VP_CORES` — which is otherwise cached after the
/// first kernel dispatch — before falling back to the cached probe).
///
/// More worker threads than cores is pure overhead — the kernel bench
/// measured speedup 0.92–0.98 at every shape on a 1-core box — so
/// [`would_parallelize`] caps the effective thread count at the core count.
/// Tests and benches on small CI machines call this to exercise the pool
/// machinery anyway (determinism is unaffected either way: the chunked and
/// serial paths are bitwise identical by construction).
pub fn set_assumed_cores(n: usize) {
    if n == 0 {
        // Restoring the default invalidates the cached VP_CORES lookup, so
        // embedders/tests that changed the env var see the new value.
        ENV_CORES.store(ENV_UNRESOLVED, Ordering::Release);
    }
    ASSUMED_CORES.store(n, Ordering::Release);
}

/// Thread count the dispatcher will actually use: the configured count
/// capped at the assumed core count.
fn effective_threads() -> usize {
    num_threads().min(assumed_cores()).max(1)
}

/// Worker count the dispatcher would actually use right now: the
/// configured thread count capped at the probed/assumed core count.
///
/// Kernels use this to choose *how* to split work (e.g. the GEMM driver
/// picks row chunks vs column panels); `1` means every dispatch goes
/// serial.
pub fn effective_parallelism() -> usize {
    effective_threads()
}

/// Whether a kernel with `rows` output rows and ~`work` scalar operations
/// would be dispatched to the pool (`false` = serial fallback). This is
/// exactly the predicate `par_rows_mut` uses; the kernel bench records it
/// as the `path` column.
pub fn would_parallelize(rows: usize, work: usize) -> bool {
    plan(rows, work).is_some()
}

/// Completion latch for one dispatch: counts outstanding chunk tasks and
/// records whether any of them panicked.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn complete_one(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// The global worker pool: a shared injector queue drained by persistent
/// worker threads. Workers are spawned lazily up to `num_threads() - 1`
/// (the dispatching caller is the remaining thread — it helps drain the
/// queue while its own chunks are pending).
struct Pool {
    tx: Sender<Task>,
    rx: Mutex<Receiver<Task>>,
    spawned: Mutex<usize>,
}

impl Pool {
    fn global() -> &'static Arc<Pool> {
        static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
        POOL.get_or_init(|| {
            let (tx, rx) = channel();
            Arc::new(Pool {
                tx,
                rx: Mutex::new(rx),
                spawned: Mutex::new(0),
            })
        })
    }

    /// Grows the pool to at least `target` workers.
    fn ensure_workers(self: &Arc<Self>, target: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < target {
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("vp-kernel-{}", *spawned))
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn kernel pool worker");
            *spawned += 1;
        }
    }

    fn worker_loop(&self) {
        loop {
            // Holding the receiver lock while blocked in `recv` is the
            // standard shared-queue pattern: pickup is serialized,
            // execution is parallel.
            let task = { self.rx.lock().unwrap().recv() };
            match task {
                Ok(task) => task(),
                Err(_) => break, // queue closed: process exit
            }
        }
    }

    /// Runs queued tasks on the calling thread until the queue is
    /// momentarily empty (or contended), then blocks on the latch.
    ///
    /// The caller may execute chunks of *other* concurrent dispatches here;
    /// that is fine — each task carries its own latch.
    fn help_then_wait(&self, latch: &Latch) {
        loop {
            if latch.is_done() {
                return;
            }
            let task = match self.rx.try_lock() {
                Ok(rx) => rx.try_recv().ok(),
                // A worker is blocked in `recv` holding the lock; don't
                // queue behind it — our chunks are already being drained.
                Err(_) => None,
            };
            match task {
                Some(task) => task(),
                None => break,
            }
        }
        latch.wait();
    }
}

/// Executes every task, borrowing from the caller's stack, and returns once
/// all of them have completed. Propagates a panic if any task panicked.
fn dispatch(tasks: Vec<ScopedTask<'_>>) {
    let pool = Pool::global();
    pool.ensure_workers(effective_threads().saturating_sub(1));
    let latch = Arc::new(Latch::new(tasks.len()));
    for task in tasks {
        // SAFETY: `dispatch` does not return until the latch reports every
        // task complete (including panicked ones — `catch_unwind` below
        // guarantees `complete_one` runs), so the borrows captured by the
        // task strictly outlive its execution. This is the same argument
        // that makes scoped threads sound.
        let task: Task = unsafe { std::mem::transmute::<ScopedTask<'_>, Task>(task) };
        let latch = Arc::clone(&latch);
        let wrapped: Task = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                latch.poisoned.store(true, Ordering::Relaxed);
            }
            latch.complete_one();
        });
        pool.tx.send(wrapped).expect("kernel pool queue closed");
    }
    pool.help_then_wait(&latch);
    if latch.poisoned.load(Ordering::Relaxed) {
        panic!("a parallel kernel task panicked");
    }
}

/// Row-range plan: `Some(rows_per_chunk)` to parallelize, `None` to run the
/// whole range serially on the caller. Serial whenever the effective worker
/// count is 1 (including "more threads than cores"), the row count is below
/// [`MIN_PARALLEL_ROWS`], or the work below [`MIN_PARALLEL_WORK`].
fn plan(rows: usize, work: usize) -> Option<usize> {
    let threads = effective_threads();
    if threads <= 1 || rows < MIN_PARALLEL_ROWS || work < MIN_PARALLEL_WORK {
        return None;
    }
    Some(rows.div_ceil(threads.min(rows)))
}

/// Runs `f(start, end, out_rows)` over disjoint row ranges covering
/// `0..rows`, where `out_rows` is the `[start*width, end*width)` window of
/// `out` (`width = out.len() / rows`).
///
/// `work` is an estimate of the total scalar operations; small kernels run
/// serially. With one thread this is exactly `f(0, rows, out)` on the
/// caller.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `rows`, or if `f` panics in
/// any chunk.
pub fn par_rows_mut(
    rows: usize,
    work: usize,
    out: &mut [f32],
    f: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    assert!(
        rows == 0 || out.len().is_multiple_of(rows),
        "ragged row buffer"
    );
    let Some(chunk) = plan(rows, work) else {
        f(0, rows, out);
        return;
    };
    let width = out.len() / rows;
    let f = &f;
    let mut tasks: Vec<ScopedTask<'_>> = Vec::new();
    let mut rest = out;
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        let (head, tail) = rest.split_at_mut((end - start) * width);
        rest = tail;
        tasks.push(Box::new(move || f(start, end, head)));
        start = end;
    }
    dispatch(tasks);
}

/// Mutable view of one column panel `[j0, j1)` of a row-major
/// `rows × stride` matrix, handed to [`par_col_panels_mut`] tasks.
///
/// Panels created by one dispatch cover **disjoint** column ranges of the
/// same buffer — that disjointness (plus the dispatch latch outliving every
/// task) is what makes the aliasing sound; see the `unsafe impl Send`.
/// All methods are safe: a panel can only reach its own columns.
pub struct ColPanelMut<'a> {
    base: *mut f32,
    rows: usize,
    stride: usize,
    j0: usize,
    j1: usize,
    _marker: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: `par_col_panels_mut` constructs the panels of one dispatch over
// pairwise-disjoint column ranges of a single exclusively-borrowed buffer,
// so moving a panel to a worker thread cannot race any other panel's
// accesses, and the `'a` marker keeps the underlying borrow alive until
// the dispatch latch has joined every task.
unsafe impl Send for ColPanelMut<'_> {}

impl ColPanelMut<'_> {
    /// The global `[j0, j1)` column range this panel owns.
    pub fn col_range(&self) -> (usize, usize) {
        (self.j0, self.j1)
    }

    /// Panel width in columns (`j1 - j0`).
    pub fn width(&self) -> usize {
        self.j1 - self.j0
    }

    /// Number of rows in the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Mutable view of this panel's slice of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "panel row {r} out of {} rows", self.rows);
        // SAFETY: `r < rows` and `j1 <= stride` (checked at construction),
        // so the range lies inside the buffer; `&mut self` plus panel
        // disjointness guarantee exclusive access to it.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.base.add(r * self.stride + self.j0),
                self.j1 - self.j0,
            )
        }
    }
}

/// Runs `f` over disjoint column panels of the row-major `rows × cols`
/// buffer `out`, partitioning columns into up to `effective_threads()`
/// panels whose widths are multiples of `align` (except the last).
///
/// This is the GEMM driver's split for **short-wide** outputs (few rows,
/// many columns — e.g. a handful of sequence positions against a large
/// vocabulary), where the rows-only split of [`par_rows_mut`] can't feed
/// more than `rows` workers. Column panels of a matmul are fully
/// independent subproblems over the same `A`, so per-element accumulation
/// order is untouched and the result stays bitwise identical to serial.
///
/// Small work (below the parallel thresholds) runs `f` inline on the
/// caller with one full-width panel — exactly the serial path.
///
/// # Panics
///
/// Panics if `out.len() != rows * cols`, if `align == 0`, or if `f` panics
/// in any panel.
pub fn par_col_panels_mut(
    rows: usize,
    cols: usize,
    align: usize,
    work: usize,
    out: &mut [f32],
    f: impl Fn(ColPanelMut<'_>) + Sync,
) {
    assert_eq!(out.len(), rows * cols, "panel buffer shape mismatch");
    assert!(align > 0, "zero panel alignment");
    let threads = effective_threads();
    let panels = threads.min(cols.div_ceil(align)).max(1);
    let width = cols.div_ceil(panels).next_multiple_of(align);
    let base = out.as_mut_ptr();
    let make_panel = move |j0: usize, j1: usize| ColPanelMut {
        base,
        rows,
        stride: cols,
        j0,
        j1,
        _marker: std::marker::PhantomData,
    };
    if panels <= 1 || work < MIN_PARALLEL_WORK {
        f(make_panel(0, cols));
        return;
    }
    let f = &f;
    let mut tasks: Vec<ScopedTask<'_>> = Vec::new();
    let mut j0 = 0;
    while j0 < cols {
        let j1 = (j0 + width).min(cols);
        let panel = make_panel(j0, j1);
        tasks.push(Box::new(move || f(panel)));
        j0 = j1;
    }
    dispatch(tasks);
}

/// Like [`par_rows_mut`] for kernels with two per-row output buffers
/// (e.g. softmax probabilities plus per-row sums). Each buffer may have its
/// own row width (`len / rows`).
///
/// # Panics
///
/// Panics if either buffer length is not a multiple of `rows`, or if `f`
/// panics in any chunk.
pub fn par_rows_mut2(
    rows: usize,
    work: usize,
    a: &mut [f32],
    b: &mut [f32],
    f: impl Fn(usize, usize, &mut [f32], &mut [f32]) + Sync,
) {
    assert!(
        rows == 0 || (a.len().is_multiple_of(rows) && b.len().is_multiple_of(rows)),
        "ragged row buffer"
    );
    let Some(chunk) = plan(rows, work) else {
        f(0, rows, a, b);
        return;
    };
    let (wa, wb) = (a.len() / rows, b.len() / rows);
    let f = &f;
    let mut tasks: Vec<ScopedTask<'_>> = Vec::new();
    let (mut rest_a, mut rest_b) = (a, b);
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        let (ca, ta) = rest_a.split_at_mut((end - start) * wa);
        let (cb, tb) = rest_b.split_at_mut((end - start) * wb);
        rest_a = ta;
        rest_b = tb;
        tasks.push(Box::new(move || f(start, end, ca, cb)));
        start = end;
    }
    dispatch(tasks);
}

/// Like [`par_rows_mut`] for kernels with three per-row output buffers
/// (e.g. layer-norm output, normalized cache and inverse-std cache).
///
/// # Panics
///
/// Panics if any buffer length is not a multiple of `rows`, or if `f`
/// panics in any chunk.
pub fn par_rows_mut3(
    rows: usize,
    work: usize,
    a: &mut [f32],
    b: &mut [f32],
    c: &mut [f32],
    f: impl Fn(usize, usize, &mut [f32], &mut [f32], &mut [f32]) + Sync,
) {
    assert!(
        rows == 0
            || (a.len().is_multiple_of(rows)
                && b.len().is_multiple_of(rows)
                && c.len().is_multiple_of(rows)),
        "ragged row buffer"
    );
    let Some(chunk) = plan(rows, work) else {
        f(0, rows, a, b, c);
        return;
    };
    let (wa, wb, wc) = (a.len() / rows, b.len() / rows, c.len() / rows);
    let f = &f;
    let mut tasks: Vec<ScopedTask<'_>> = Vec::new();
    let (mut rest_a, mut rest_b, mut rest_c) = (a, b, c);
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        let (ca, ta) = rest_a.split_at_mut((end - start) * wa);
        let (cb, tb) = rest_b.split_at_mut((end - start) * wb);
        let (cc, tc) = rest_c.split_at_mut((end - start) * wc);
        rest_a = ta;
        rest_b = tb;
        rest_c = tc;
        tasks.push(Box::new(move || f(start, end, ca, cb, cc)));
        start = end;
    }
    dispatch(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reconfigure the global thread count and, for
    /// the duration of the guard, pretends the machine has plenty of cores
    /// so the pool machinery is exercised even on a 1-core CI box.
    struct ConfigGuard {
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl Drop for ConfigGuard {
        fn drop(&mut self) {
            set_assumed_cores(0);
        }
    }

    fn config_lock() -> ConfigGuard {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_assumed_cores(16);
        ConfigGuard { _lock: guard }
    }

    #[test]
    fn set_num_threads_overrides_default() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(7);
        assert_eq!(num_threads(), 7);
        set_num_threads(0); // clamps to 1
        assert_eq!(num_threads(), 1);
        set_num_threads(before);
    }

    #[test]
    fn par_rows_mut_covers_every_row_once() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(3);
        let (rows, width) = (103, 64);
        let mut out = vec![0.0f32; rows * width];
        par_rows_mut(rows, rows * width * 100, &mut out, |start, end, chunk| {
            for (local, row) in chunk.chunks_mut(width).enumerate() {
                for v in row {
                    *v += (start + local) as f32;
                }
            }
            assert_eq!(chunk.len(), (end - start) * width);
        });
        for (r, row) in out.chunks(width).enumerate() {
            assert!(
                row.iter().all(|&v| v == r as f32),
                "row {r} wrong/duplicated"
            );
        }
        set_num_threads(before);
    }

    #[test]
    fn small_work_runs_serially_in_one_chunk() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(4);
        let mut out = vec![0.0f32; 8];
        let calls = AtomicUsize::new(0);
        par_rows_mut(8, 8, &mut out, |start, end, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((start, end), (0, 8));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        set_num_threads(before);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(4);
        let mut out = vec![0.0f32; 64 * 1024];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_rows_mut(64, usize::MAX, &mut out, |start, _, _| {
                if start == 0 {
                    panic!("chunk failure");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate to the caller");
        // The pool must stay usable after a poisoned dispatch.
        par_rows_mut(64, usize::MAX, &mut out, |_, _, chunk| chunk.fill(1.0));
        assert!(out.iter().all(|&v| v == 1.0));
        set_num_threads(before);
    }

    #[test]
    fn multi_buffer_chunks_stay_aligned() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(5);
        let rows = 31;
        let mut a = vec![0.0f32; rows * 16];
        let mut b = vec![0.0f32; rows];
        let mut c = vec![0.0f32; rows * 3];
        par_rows_mut3(
            rows,
            usize::MAX,
            &mut a,
            &mut b,
            &mut c,
            |start, end, ca, cb, cc| {
                assert_eq!(ca.len(), (end - start) * 16);
                assert_eq!(cb.len(), end - start);
                assert_eq!(cc.len(), (end - start) * 3);
                cb.iter_mut()
                    .enumerate()
                    .for_each(|(i, v)| *v = (start + i) as f32);
            },
        );
        for (r, &v) in b.iter().enumerate() {
            assert_eq!(v, r as f32);
        }
        set_num_threads(before);
    }

    #[test]
    fn more_threads_than_cores_falls_back_to_serial() {
        let _guard = config_lock();
        let before = num_threads();
        set_assumed_cores(1);
        set_num_threads(8);
        assert!(
            !would_parallelize(1024, usize::MAX),
            "8 threads on 1 core must not dispatch"
        );
        let calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 1024];
        par_rows_mut(1024, usize::MAX, &mut out, |start, end, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((start, end), (0, 1024));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        set_num_threads(before);
    }

    #[test]
    fn few_rows_fall_back_to_serial() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(4);
        // Huge per-row work, but below the row threshold: still serial.
        assert!(!would_parallelize(MIN_PARALLEL_ROWS - 1, usize::MAX));
        assert!(would_parallelize(MIN_PARALLEL_ROWS, usize::MAX));
        let calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; (MIN_PARALLEL_ROWS - 1) * 8];
        par_rows_mut(MIN_PARALLEL_ROWS - 1, usize::MAX, &mut out, |_, _, _| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        set_num_threads(before);
    }

    #[test]
    fn detect_cores_is_at_least_one_and_consistent() {
        let n = detect_cores();
        assert!(n >= 1);
        // The multi-source probe can only improve on the conservative
        // affinity-based answer, never undercut it.
        let avail = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        assert!(n >= avail);
    }

    #[test]
    fn clearing_the_override_rereads_vp_cores() {
        // `VP_CORES` is cached after the first dispatch (hot path), but
        // `set_assumed_cores(0)` must drop that cache so embedders/tests
        // that changed the env var don't get silently stale behavior.
        let _guard = config_lock();
        let probed = detect_cores();
        std::env::set_var("VP_CORES", "3");
        set_assumed_cores(0);
        assert_eq!(assumed_cores(), 3);
        std::env::set_var("VP_CORES", "5");
        assert_eq!(assumed_cores(), 3, "cached until the override is cleared");
        set_assumed_cores(0);
        assert_eq!(assumed_cores(), 5, "clearing the override re-reads the env");
        std::env::remove_var("VP_CORES");
        set_assumed_cores(0);
        assert_eq!(assumed_cores(), probed, "unset env falls back to the probe");
        // Leave the guard's plenty-of-cores assumption in place for the
        // remainder of the lock scope.
        set_assumed_cores(16);
    }

    #[test]
    fn cpu_list_parsing_handles_kernel_formats() {
        assert_eq!(parse_cpu_list("0"), Some(1));
        assert_eq!(parse_cpu_list("0-3"), Some(4));
        assert_eq!(parse_cpu_list("0-3\n"), Some(4));
        assert_eq!(parse_cpu_list("0-1,4-7"), Some(6));
        assert_eq!(parse_cpu_list("0,2,5"), Some(3));
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
    }

    #[test]
    fn cgroup_quota_parsing_handles_kernel_formats() {
        assert_eq!(parse_cgroup_cpu_max("400000 100000"), Some(4));
        assert_eq!(parse_cgroup_cpu_max("150000 100000\n"), Some(2));
        assert_eq!(parse_cgroup_cpu_max("max 100000"), None);
        assert_eq!(parse_cgroup_cpu_max(""), None);
        assert_eq!(parse_cgroup_quota("-1", "100000"), None);
        assert_eq!(parse_cgroup_quota("100000", "100000"), Some(1));
        assert_eq!(parse_cgroup_quota("garbage", "100000"), None);
    }

    #[test]
    fn col_panels_cover_every_column_once_and_are_aligned() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(3);
        let (rows, cols, align) = (5, 103, 8);
        let mut out = vec![0.0f32; rows * cols];
        par_col_panels_mut(rows, cols, align, usize::MAX, &mut out, |mut panel| {
            let (j0, j1) = panel.col_range();
            assert!(j0 < j1 && j1 <= cols);
            // Every panel except the last is align-wide.
            if j1 != cols {
                assert_eq!(panel.width() % align, 0, "panel [{j0},{j1}) unaligned");
            }
            for r in 0..rows {
                for (local, v) in panel.row_mut(r).iter_mut().enumerate() {
                    *v += (r * cols + j0 + local) as f32;
                }
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32, "column {i} missed or duplicated");
        }
        set_num_threads(before);
    }

    #[test]
    fn col_panels_run_serially_below_thresholds() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(4);
        let calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 4 * 64];
        par_col_panels_mut(4, 64, 8, 16, &mut out, |panel| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(panel.col_range(), (0, 64));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        set_num_threads(before);
    }

    #[test]
    fn single_core_machine_never_dispatches_to_the_pool() {
        // Regression for the BENCH_kernels.json table where every kernel
        // *lost* to serial yet reported `path: "threaded"`: with a probed
        // core count of 1, the dispatch heuristic must choose serial no
        // matter how many threads were requested — for both split shapes.
        let _guard = config_lock();
        let before = num_threads();
        set_assumed_cores(1);
        set_num_threads(8);
        assert_eq!(effective_parallelism(), 1);
        assert!(!would_parallelize(usize::MAX / 2, usize::MAX));
        let rows_calls = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 64 * 64];
        par_rows_mut(64, usize::MAX, &mut out, |start, end, _| {
            rows_calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((start, end), (0, 64));
        });
        assert_eq!(rows_calls.load(Ordering::SeqCst), 1);
        let col_calls = AtomicUsize::new(0);
        par_col_panels_mut(64, 64, 8, usize::MAX, &mut out, |panel| {
            col_calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(panel.col_range(), (0, 64));
        });
        assert_eq!(col_calls.load(Ordering::SeqCst), 1);
        set_num_threads(before);
    }

    #[test]
    fn zero_rows_and_zero_width_are_noops() {
        let _guard = config_lock();
        let before = num_threads();
        set_num_threads(3);
        par_rows_mut(0, usize::MAX, &mut [], |_, _, chunk| {
            assert!(chunk.is_empty());
        });
        let mut empty_width = vec![0.0f32; 0];
        par_rows_mut(5, usize::MAX, &mut empty_width, |start, end, chunk| {
            assert!(chunk.is_empty());
            assert!(end >= start);
        });
        set_num_threads(before);
    }
}
