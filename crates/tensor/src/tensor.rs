use crate::{alloc, gemm, pool, Result, TensorError};

/// Shared driver for every matmul layout: allocate a pooled, zeroed output
/// and run the packed GEMM ([`crate::gemm`]) via the worker pool. All three
/// layouts accumulate each output element in ascending `k` order from
/// `0.0` — bitwise identical to the plain `i-k-j` triple loop for any
/// tiling, thread count or split direction. There is deliberately no
/// `a == 0.0` fast path: skipping a term would turn `0·NaN`/`0·∞` (which
/// are `NaN` under IEEE 754) into `0`, silently masking poisoned gradients.
///
/// The split direction is shape-driven: outputs with enough rows to give
/// every worker at least one full register tile split into contiguous row
/// chunks; short-wide outputs (few rows against a large vocabulary) split
/// into column panels instead, which are independent subproblems over the
/// same `A` — either way each output element is produced by exactly one
/// task running the serial kernel.
fn run_gemm(
    a: &Tensor,
    b: &Tensor,
    m: usize,
    k: usize,
    n: usize,
    layout: gemm::Layout,
    bias: Option<&[f32]>,
) -> Tensor {
    let mut out = Tensor::zeros(m, n);
    let g = gemm::Gemm {
        a: &a.data,
        b: &b.data,
        k,
        n,
        m,
        layout,
    };
    let work = m.saturating_mul(k).saturating_mul(n);
    let workers = pool::effective_parallelism();
    if m >= workers * gemm::MR && pool::would_parallelize(m, work) {
        pool::par_rows_mut(m, work, &mut out.data, |i0, i1, chunk| {
            let mut rows = gemm::ContigRows {
                buf: chunk,
                width: n,
            };
            gemm::gemm_chunk(&g, i0, i1 - i0, 0, n, &mut rows, bias);
        });
    } else {
        // Short-wide (or serial): the panel split hands the whole problem
        // to one task when parallelism isn't worth it.
        pool::par_col_panels_mut(m, n, gemm::NR, work, &mut out.data, |mut panel| {
            let (j0, j1) = panel.col_range();
            gemm::gemm_chunk(&g, 0, m, j0, j1 - j0, &mut panel, bias);
        });
    }
    out
}

/// A dense, row-major 2-D tensor of `f32` values.
///
/// All higher-rank data in this workspace (e.g. `[batch, seq, hidden]`
/// activations) is stored flattened to two dimensions, which matches how the
/// paper's output-layer math is written (`X` is `[b·s, h]`, logits are
/// `[b·s, V]`).
///
/// # Example
///
/// ```
/// use vp_tensor::Tensor;
///
/// let t = Tensor::zeros(2, 2);
/// assert_eq!(t.shape(), (2, 2));
/// assert_eq!(t.data(), &[0.0; 4]);
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        // Route copies through the buffer arena so clones recycle too.
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: alloc::take_copy(&self.data),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Park the backing buffer in the arena for the next allocation of
        // a compatible size (a no-op when the arena is disabled).
        alloc::release(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: alloc::take_zeroed(rows * cols),
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::full(rows, cols, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: alloc::take_filled(rows * cols, value),
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Creates a `1×n` row vector from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data: alloc::take_copy(data),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    ///
    /// The buffer leaves the arena's management: it is never recycled
    /// unless the caller hands it back (e.g. via [`Tensor::from_vec`]).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Returns the transpose as a new tensor.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if the element counts differ.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Result<Tensor> {
        if rows * cols != self.data.len() {
            return Err(TensorError::BadBuffer {
                expected: rows * cols,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            rows,
            cols,
            data: std::mem::take(&mut self.data),
        })
    }

    /// Copies the columns `[c0, c1)` of every row into a new tensor.
    ///
    /// Used to slice a vocabulary shard out of a full embedding matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `c1 > cols` or `c0 > c1`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Result<Tensor> {
        if c1 > self.cols || c0 > c1 {
            return Err(TensorError::OutOfBounds {
                op: "slice_cols",
                index: c1,
                bound: self.cols + 1,
            });
        }
        let w = c1 - c0;
        let mut out = Tensor::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        Ok(out)
    }

    /// Copies the rows `[r0, r1)` into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if `r1 > rows` or `r0 > r1`.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Result<Tensor> {
        if r1 > self.rows || r0 > r1 {
            return Err(TensorError::OutOfBounds {
                op: "slice_rows",
                index: r1,
                bound: self.rows + 1,
            });
        }
        let data = alloc::take_copy(&self.data[r0 * self.cols..r1 * self.cols]);
        Ok(Tensor {
            rows: r1 - r0,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates tensors along rows (vertical stack).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ, or
    /// [`TensorError::InvalidArgument`] when `parts` is empty.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat_rows of zero tensors".into()))?;
        let cols = first.cols;
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            rows += p.rows;
        }
        let mut data = alloc::take_raw(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Matrix product `self · rhs` where `self` is `[m, k]` and `rhs` is `[k, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        Ok(run_gemm(self, rhs, m, k, n, gemm::Layout::Nn, None))
    }

    /// Fused `self · rhs + bias` where `bias` is a `1 × n` row broadcast
    /// over every output row.
    ///
    /// The bias is added inside the GEMM's output loop while each column
    /// strip is still cache-hot — one fewer full pass over the output than
    /// `matmul` followed by a broadcast add, and bitwise identical to it
    /// (per element the order is still `(Σₚ aₚ·bₚ) + bias`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if inner dimensions differ or
    /// `bias` is not `1 × n`.
    pub fn matmul_bias(&self, rhs: &Tensor, bias: &Tensor) -> Result<Tensor> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if bias.shape() != (1, rhs.cols) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: (1, rhs.cols),
                rhs: bias.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        Ok(run_gemm(
            self,
            rhs,
            m,
            k,
            n,
            gemm::Layout::Nn,
            Some(&bias.data),
        ))
    }

    /// Matrix product `self · rhsᵀ` where `self` is `[m, k]` and `rhs` is `[n, k]`.
    ///
    /// This is the layout of the output-layer logits computation
    /// `Y = X·Wᵀ` where `W` stores one vocabulary row per token.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shared dimension differs.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        Ok(run_gemm(self, rhs, m, k, n, gemm::Layout::Nt, None))
    }

    /// Matrix product `selfᵀ · rhs` where `self` is `[k, m]` and `rhs` is `[k, n]`.
    ///
    /// This is the layout of weight-gradient computations such as
    /// `∇W = (softmax(Y) − G)ᵀ · X`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shared dimension differs.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        Ok(run_gemm(self, rhs, m, k, n, gemm::Layout::Tn, None))
    }

    /// Elementwise sum, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place elementwise accumulation `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaled accumulation `self += alpha * rhs` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        out.scale_in_place(alpha);
        out
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = alloc::take_raw(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements (in `f64` for accuracy).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute elementwise difference between two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> Result<f32> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs())))
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = alloc::take_raw(self.data.len());
        data.extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)));
        Ok(Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.at(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Tensor::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::BadBuffer { .. })
        ));
    }

    #[test]
    fn eye_matmul_is_identity() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let i2 = Tensor::eye(2);
        assert_eq!(i2.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_nt(&Tensor::zeros(4, 5)).is_err());
        assert!(a.matmul_tn(&Tensor::zeros(5, 2)).is_err());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 4., -1.]).unwrap();
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect()).unwrap();
        let via_nt = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose()).unwrap();
        assert!(via_nt.max_abs_diff(&via_t).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., -2., 3., 0.5, 4., -1.]).unwrap();
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32).sin()).collect()).unwrap();
        let via_tn = a.matmul_tn(&b).unwrap();
        let via_t = a.transpose().matmul(&b).unwrap();
        assert!(via_tn.max_abs_diff(&via_t).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_entries() {
        // Regression: the kernels used to skip `a == 0.0` terms, which
        // violates IEEE semantics (`0·NaN` is `NaN`) and silently masked
        // poisoned gradients. A zero in the left operand multiplying a NaN
        // in the right operand must poison the affected output entries.
        let a = Tensor::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let mut b = Tensor::from_vec(2, 2, vec![f32::NAN, 5.0, 6.0, 7.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        // out[0,0] = 0·NaN + 1·6 and out[1,0] = 2·NaN + 3·6 are both NaN.
        assert!(c.at(0, 0).is_nan());
        assert!(c.at(1, 0).is_nan());
        // Columns untouched by the NaN stay finite.
        assert!(c.at(0, 1).is_finite());
        assert!(c.at(1, 1).is_finite());

        // Same through matmul_tn (`selfᵀ·rhs`): a zero in `self` times a NaN
        // row of `rhs` must poison the whole corresponding output row.
        let at = Tensor::from_vec(2, 2, vec![0.0, 2.0, 1.0, 3.0]).unwrap();
        let c_tn = at.matmul_tn(&b).unwrap();
        assert!(c_tn.at(0, 0).is_nan());
        assert!(c_tn.at(1, 0).is_nan());
        assert!(c_tn.at(0, 1).is_finite());

        // And 0·∞ must be NaN as well, in every layout.
        *b.at_mut(0, 0) = f32::INFINITY;
        assert!(a.matmul(&b).unwrap().at(0, 0).is_nan());
        assert!(at.matmul_tn(&b).unwrap().at(0, 0).is_nan());
    }

    #[test]
    fn matmul_propagates_nan_in_left_operand() {
        let a = Tensor::from_vec(2, 2, vec![f32::NAN, 0.0, 1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        // Row 0 sums a NaN term in every column; row 1 is clean.
        assert!(c.at(0, 0).is_nan() && c.at(0, 1).is_nan());
        assert!(c.at(1, 0).is_finite() && c.at(1, 1).is_finite());
        let c_nt = a.matmul_nt(&b).unwrap();
        assert!(c_nt.at(0, 0).is_nan() && c_nt.at(0, 1).is_nan());
        assert!(c_nt.at(1, 0).is_finite());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn slice_cols_extracts_shard() {
        let a = Tensor::from_vec(2, 4, vec![0., 1., 2., 3., 10., 11., 12., 13.]).unwrap();
        let s = a.slice_cols(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.data(), &[1., 2., 11., 12.]);
    }

    #[test]
    fn slice_rows_and_concat_round_trip() {
        let a = Tensor::from_vec(4, 2, (0..8).map(|i| i as f32).collect()).unwrap();
        let top = a.slice_rows(0, 2).unwrap();
        let bottom = a.slice_rows(2, 4).unwrap();
        let back = Tensor::concat_rows(&[&top, &bottom]).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn add_sub_mul_axpy() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4., 10., 18.]);
        let mut c = a;
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.data(), &[9., 12., 15.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = a.clone().reshape(3, 2).unwrap();
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(4, 2).is_err());
    }

    #[test]
    fn norm_and_sums() {
        let a = Tensor::from_vec(1, 2, vec![3., 4.]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-9);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
    }
}
