//! Polynomial vector math (`exp`, `tanh`) behind an explicit accuracy
//! policy.
//!
//! The transcendental kernels (GELU's `tanh`, softmax's `exp`) used to call
//! libm once per element — the kernel bench measured GELU at 0.37 GFLOP/s
//! with scalar `tanh` taking ~25 ns/element, 4× slower than a 256³ matmul.
//! This module provides branch-free polynomial approximations that the
//! compiler auto-vectorizes (the workspace builds with `target-cpu=native`),
//! plus the process-wide policy that decides which path kernels take.
//!
//! # Accuracy policy
//!
//! Two paths, selected once per process:
//!
//! * **Reference** (`VP_FAST_MATH=0` or [`set_fast_math`]`(Some(false))`):
//!   kernels call `f32::exp` / `f32::tanh` exactly as they always have.
//!   This path is *bitwise-pinned*: outputs are byte-identical to the
//!   pre-fast-math implementation (pinned by
//!   `crates/tensor/tests/mathx.rs`), so the paper's Fig-17 equivalence
//!   protocol and every existing `bitwise_identical` invariant are
//!   unaffected by this module's existence.
//! * **Fast** (the default): kernels call [`exp`] / [`tanh`] below. The
//!   approximations are bounded against libm by property tests:
//!   `exp` within [`EXP_MAX_ULP`] ULP over the full finite range (exact at
//!   `0`, `−∞`, `∞`, `NaN`), `tanh` within [`TANH_MAX_ABS_ERROR`] absolute
//!   error with `|tanh(x)| ≤ 1` everywhere and NaN propagated.
//!
//! Whichever path is active, it is **deterministic and elementwise**, so
//! threaded kernels remain bitwise identical to serial kernels, and two
//! training runs under the same policy are byte-identical — only the
//! *reference* path additionally matches the historical bytes.
//!
//! The policy is process-global on purpose: forward caches (e.g. GELU's
//! cached tanh term) must be produced by the same function the backward
//! pass uses, or the hoisted-vs-recomputed bitwise identity breaks.

use std::sync::atomic::{AtomicU8, Ordering};

/// Documented bound for [`exp`] vs `f32::exp`, in units in the last place.
///
/// Property-tested over a dense sweep of the finite range plus randomized
/// inputs in `crates/tensor/tests/mathx.rs`.
pub const EXP_MAX_ULP: u32 = 4;

/// Documented bound for [`tanh`] vs `f32::tanh`, as absolute error.
///
/// `tanh` saturates in `[-1, 1]`, so an absolute bound (4 ULP of 1.0) is
/// the meaningful one; property-tested alongside [`EXP_MAX_ULP`].
pub const TANH_MAX_ABS_ERROR: f32 = 5e-7;

/// Policy cell: 0 = unresolved, 1 = reference, 2 = fast.
static POLICY: AtomicU8 = AtomicU8::new(0);

/// Whether kernels take the fast polynomial path (`true`) or the
/// bitwise-pinned libm reference path (`false`).
///
/// Resolved once from `VP_FAST_MATH` (`0`/`false`/`off` → reference,
/// anything else or unset → fast) unless overridden by [`set_fast_math`].
pub fn fast_math() -> bool {
    match POLICY.load(Ordering::Acquire) {
        0 => {
            let fast = default_policy();
            let v = if fast { 2 } else { 1 };
            // A racing `set_fast_math` wins; only fill in the default once.
            let _ = POLICY.compare_exchange(0, v, Ordering::AcqRel, Ordering::Acquire);
            POLICY.load(Ordering::Acquire) == 2
        }
        v => v == 2,
    }
}

fn default_policy() -> bool {
    match std::env::var("VP_FAST_MATH") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    }
}

/// Overrides the accuracy policy process-wide (`None` restores resolution
/// from the `VP_FAST_MATH` environment variable on next use).
///
/// Takes effect for subsequent kernel calls. Tests use this to pin both
/// paths; mixing policies *within* one forward/backward pair is the one
/// thing the policy exists to prevent, so flip it only between steps.
pub fn set_fast_math(fast: Option<bool>) {
    let v = match fast {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    POLICY.store(v, Ordering::Release);
}

// Cody–Waite split of ln 2 for the range reduction `x = n·ln2 + r`:
// the high part is exactly representable, so `x − n·LN2_HI` is exact for
// the |n| ≤ 151 that survive the clamp, and only the tiny LO term rounds.
const LOG2E: f32 = std::f32::consts::LOG2_E;
// Written with the digits of the exact f32 value (0x3F31_8000) so the split
// is auditable; clippy would round the literal to fewer digits.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;

// Degree-5 minimax polynomial for e^r on r ∈ [−½ln2, ½ln2] (Cephes expf
// coefficients); c0 = c1 = 1 keeps exp(0) == 1 exactly.
const EXP_C2: f32 = 0.5;
const EXP_C3: f32 = 1.666_665_7e-1;
const EXP_C4: f32 = 4.166_695_4e-2;
const EXP_C5: f32 = 8.333_452e-3;
const EXP_C6: f32 = 1.398_10e-3;

/// Inputs below this underflow to `0.0` even through denormals.
const EXP_LO: f32 = -103.972_08;
/// Inputs above this overflow to `∞`.
const EXP_HI: f32 = 88.722_84;

/// Fast polynomial `e^x` (within [`EXP_MAX_ULP`] ULP of `f32::exp`).
///
/// Branch-free (clamp + arithmetic selects), so slices mapped through it
/// auto-vectorize. Special values match libm exactly: `exp(0) = 1`,
/// `exp(−∞) = 0`, `exp(∞) = ∞`, `exp(NaN) = NaN`.
#[inline(always)]
pub fn exp(x: f32) -> f32 {
    let xc = x.clamp(EXP_LO, EXP_HI);
    // Round-to-nearest via the 1.5·2²³ magic constant (valid because the
    // clamp bounds |x·log2e| ≤ 151 ≪ 2²²).
    let nf = (xc * LOG2E + 12_582_912.0) - 12_582_912.0;
    let r = (xc - nf * LN2_HI) - nf * LN2_LO;
    let p = EXP_C6;
    let p = p * r + EXP_C5;
    let p = p * r + EXP_C4;
    let p = p * r + EXP_C3;
    let p = p * r + EXP_C2;
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // 2^n via exponent-field construction, split as 2^⌊n/2⌋·2^⌈n/2⌉ so the
    // clamp's n ∈ [−151, 129] scales through two normal-range multiplies
    // (a single 2^n would need a denormal exponent below n = −126).
    let n = nf as i32;
    let n_hi = n >> 1;
    let n_lo = n - n_hi;
    let s_hi = f32::from_bits(((n_hi + 127) as u32) << 23);
    let s_lo = f32::from_bits(((n_lo + 127) as u32) << 23);
    let v = (p * s_hi) * s_lo;
    // Arithmetic selects (compile to vector blends, not branches).
    let v = if x < EXP_LO { 0.0 } else { v };
    let v = if x > EXP_HI { f32::INFINITY } else { v };
    if x.is_nan() {
        x
    } else {
        v
    }
}

// Eigen-style rational approximation of tanh on the non-saturated range:
// tanh(x) ≈ x·P(x²) / Q(x²), clamped to |x| ≤ 7.90531 beyond which the
// f32 value of tanh is ±1 to well under a ULP.
const TANH_CLAMP: f32 = 7.905_311;
const TANH_A1: f32 = 4.893_525e-3;
const TANH_A3: f32 = 6.372_619_3e-4;
const TANH_A5: f32 = 1.485_722_4e-5;
const TANH_A7: f32 = 5.122_297e-8;
const TANH_A9: f32 = -8.604_672e-11;
const TANH_A11: f32 = 2.000_188e-13;
const TANH_A13: f32 = -2.760_768_5e-16;
// Keeps the published coefficient's digits (rounds to the same f32).
#[allow(clippy::excessive_precision)]
const TANH_B0: f32 = 4.893_525_2e-3;
const TANH_B2: f32 = 2.268_434_6e-3;
const TANH_B4: f32 = 1.185_347e-4;
const TANH_B6: f32 = 1.198_258_4e-6;

/// Fast rational `tanh x` (within [`TANH_MAX_ABS_ERROR`] of `f32::tanh`,
/// `|result| ≤ 1`, NaN propagated).
///
/// Branch-free, so slices mapped through it auto-vectorize.
#[inline(always)]
pub fn tanh(x: f32) -> f32 {
    // `clamp` propagates NaN, so poisoned activations stay poisoned.
    let xc = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = xc * xc;
    let p = TANH_A13;
    let p = p * x2 + TANH_A11;
    let p = p * x2 + TANH_A9;
    let p = p * x2 + TANH_A7;
    let p = p * x2 + TANH_A5;
    let p = p * x2 + TANH_A3;
    let p = p * x2 + TANH_A1;
    let p = p * xc;
    let q = TANH_B6;
    let q = q * x2 + TANH_B4;
    let q = q * x2 + TANH_B2;
    let q = q * x2 + TANH_B0;
    let v = p / q;
    // The rational form stays inside (−1, 1) on the clamped range, but pin
    // the saturation contract against coefficient drift anyway.
    v.clamp(-1.0, 1.0)
}

/// Serializes in-crate tests that flip the process-global policy against
/// tests whose bitwise assertions depend on the policy staying put.
#[cfg(test)]
pub(crate) fn test_policy_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_special_values_match_libm() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp(f32::INFINITY), f32::INFINITY);
        assert!(exp(f32::NAN).is_nan());
        assert_eq!(exp(-1000.0), 0.0);
        assert_eq!(exp(1000.0), f32::INFINITY);
    }

    #[test]
    fn tanh_special_values() {
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(f32::INFINITY), tanh(100.0));
        assert!(tanh(f32::NAN).is_nan());
        assert!(tanh(50.0) <= 1.0 && tanh(50.0) > 0.999_999);
        assert!(tanh(-50.0) >= -1.0 && tanh(-50.0) < -0.999_999);
    }

    #[test]
    fn policy_override_round_trips() {
        let _guard = test_policy_guard();
        set_fast_math(Some(false));
        assert!(!fast_math());
        set_fast_math(Some(true));
        assert!(fast_math());
        set_fast_math(None);
    }
}
