//! Integration tests of measured-run tracing: train a vocabulary-parallel
//! schedule with `train_schedule_traced` and check the recorded timeline
//! has the structure the paper's figures claim — vocabulary passes sit in
//! the bubbles of the transformer timeline, every microbatch appears, and
//! the exported Chrome trace is well-formed.

use vp_runtime::{train_schedule, train_schedule_traced, DataSource, SyntheticCorpus, TinyConfig};
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::VocabVariant;
use vp_trace::{TraceEvent, Track};

fn source(config: &TinyConfig) -> DataSource {
    DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ))
}

fn traced_vocab_run() -> (Vec<TraceEvent>, vp_trace::TimelineReport, String) {
    let config = TinyConfig::default();
    let schedule = generators::vocab_1f1b(
        4,
        config.microbatches as u32,
        VocabVariant::Alg2,
        PassTimes::default(),
        true,
    );
    let (report, log) = train_schedule_traced(&config, &schedule, 2, &source(&config))
        .expect("traced vocab schedule trains");
    assert!(report.losses.iter().all(|l| l.is_finite()));
    assert_eq!(log.dropped(), 0, "event buffers overflowed");
    let timeline = log.report();
    let chrome = log.chrome_trace();
    (log.events(), timeline, chrome)
}

const TRANSFORMER: [&str; 3] = ["F", "B", "W"];
const VOCAB: [&str; 4] = ["S", "T", "InputF", "InputB"];

/// The paper's central timeline claim, measured: every vocabulary pass
/// (`S`/`T`/input shards) executes strictly inside a bubble window of the
/// device's transformer (`F`/`B`/`W`) timeline — zero overlap, so the
/// vocabulary work displaces idle time, not transformer compute.
#[test]
fn vocab_passes_sit_inside_transformer_bubbles() {
    let (events, _, _) = traced_vocab_run();
    let devices = 1 + events.iter().map(|e| e.device).max().unwrap() as usize;
    let mut checked = 0;
    for d in 0..devices as u32 {
        let transformer: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.device == d && e.track == Track::Compute && TRANSFORMER.contains(&e.name))
            .map(|e| (e.start_ns, e.end_ns))
            .collect();
        assert!(
            !transformer.is_empty(),
            "device {d} ran no transformer passes"
        );
        for e in events
            .iter()
            .filter(|e| e.device == d && e.track == Track::Compute && VOCAB.contains(&e.name))
        {
            for &(ts, te) in &transformer {
                let lo = e.start_ns.max(ts);
                let hi = e.end_ns.min(te);
                assert!(
                    lo >= hi,
                    "device {d}: vocab pass {} [{}, {}) overlaps transformer pass [{ts}, {te})",
                    e.name,
                    e.start_ns,
                    e.end_ns
                );
            }
            checked += 1;
        }
    }
    // 4 microbatches × (S, T, InputF, InputB) on every one of 4 devices.
    assert!(checked >= 16, "only {checked} vocab passes checked");
}

/// Every microbatch appears in the compute timeline of every device, and
/// per-device compute spans are sequential (monotonic, non-overlapping) —
/// the properties the CI schema check asserts on the exported JSON.
#[test]
fn measured_timeline_is_sequential_and_complete() {
    let (events, _, _) = traced_vocab_run();
    let config = TinyConfig::default();
    for d in 0..4u32 {
        let mut compute: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.device == d && e.track == Track::Compute)
            .collect();
        compute.sort_by_key(|e| e.start_ns);
        let mut seen = std::collections::BTreeSet::new();
        let mut prev_end = 0u64;
        for e in &compute {
            assert!(e.end_ns >= e.start_ns, "negative span on device {d}");
            assert!(
                e.start_ns >= prev_end,
                "device {d}: overlapping compute passes at {} < {prev_end}",
                e.start_ns
            );
            prev_end = e.end_ns;
            if e.microbatch != vp_trace::NO_MICROBATCH {
                seen.insert(e.microbatch);
            }
        }
        let expected: std::collections::BTreeSet<u32> = (0..config.microbatches as u32).collect();
        assert_eq!(seen, expected, "device {d} missed microbatches");
    }
}

/// The analyzer and the Chrome exporter agree with the raw stream: bubbles
/// are in range, stream work exists and overlaps compute (the §6.1 C1
/// barrier hides under passes), and the JSON is structurally sound.
#[test]
fn timeline_report_and_chrome_export_are_sane() {
    let (events, timeline, chrome) = traced_vocab_run();
    assert_eq!(timeline.devices.len(), 4);
    assert!(timeline.makespan_ns > 0);
    assert!(timeline.critical_path_ns > 0);
    assert!(timeline.critical_path_ns <= timeline.makespan_ns);
    for d in &timeline.devices {
        let bubble = d.bubble_fraction(timeline.makespan_ns);
        assert!((0.0..=1.0).contains(&bubble), "bubble {bubble}");
        assert!(d.busy_ns > 0, "device {} never computed", d.device);
        // Every device runs the C1 barrier on its stream.
        assert!(d.stream_ns > 0, "device {} ran no stream work", d.device);
    }
    // All-reduce barriers overlap compute at least partially somewhere.
    assert!(
        timeline.mean_comm_overlap() > 0.0,
        "no communication was hidden under compute"
    );
    // S and T passes were recorded and accounted.
    assert!(timeline.time_by_name.contains_key("S"));
    assert!(timeline.time_by_name.contains_key("T"));
    // The export carries every compute event as a duration event.
    assert_eq!(
        chrome.matches("\"ph\":\"X\"").count(),
        events.len(),
        "exporter dropped events"
    );
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert!(chrome.contains("comm-stream"));
    assert!(chrome.contains("\"microbatch\":3"));
}

/// The arena counterpart of the traced/untraced invariant: recycling
/// buffers through the tensor arena must not perturb training numerics.
/// Pooled and fresh-allocation runs of the same schedule produce bitwise
/// identical loss trajectories, and the pooled run actually recycles.
#[test]
fn pooled_and_fresh_runs_train_identically() {
    let config = TinyConfig::default();
    let schedule = generators::vocab_1f1b(
        4,
        config.microbatches as u32,
        VocabVariant::Alg2,
        PassTimes::default(),
        true,
    );
    vp_tensor::alloc::set_enabled(false);
    let fresh = train_schedule(&config, &schedule, 3, &source(&config)).unwrap();
    vp_tensor::alloc::set_enabled(true);
    // Warm-up run populates the pool; the second run reads recycled buffers.
    let warm = train_schedule(&config, &schedule, 3, &source(&config)).unwrap();
    vp_tensor::alloc::reset_counters();
    let pooled = train_schedule(&config, &schedule, 3, &source(&config)).unwrap();
    let stats = vp_tensor::alloc::stats();
    assert!(stats.reuse > 0, "pooled run never recycled: {stats:?}");
    let bits = |r: &vp_runtime::TrainReport| -> Vec<u64> {
        r.losses.iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(bits(&fresh), bits(&warm), "arena changed the numerics");
    assert_eq!(bits(&fresh), bits(&pooled), "recycled buffers leaked state");
    assert_eq!(fresh.iter_wall.len(), 3);
    assert_eq!(pooled.iter_wall.len(), 3);
}

/// The untraced entry point stays on the event-free fast path: same losses
/// as the traced run (tracing must not perturb numerics), and no trace
/// machinery is observable.
#[test]
fn traced_and_untraced_runs_train_identically() {
    let config = TinyConfig::default();
    let schedule = generators::vocab_1f1b(
        4,
        config.microbatches as u32,
        VocabVariant::Alg2,
        PassTimes::default(),
        true,
    );
    let plain = train_schedule(&config, &schedule, 2, &source(&config)).unwrap();
    let (traced, log) = train_schedule_traced(&config, &schedule, 2, &source(&config)).unwrap();
    assert_eq!(plain.losses, traced.losses, "tracing changed the numerics");
    assert!(!log.is_empty());
}
