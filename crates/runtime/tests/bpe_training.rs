//! End-to-end integration with the `vp-data` substrate: train the tiny GPT
//! on a BPE-tokenized synthetic text corpus (the offline analogue of the
//! artifact's customized C4 pipeline) and verify that the pipelined
//! implementation with Vocabulary Parallelism matches the single-device
//! reference on real data too.

use std::sync::Arc;
use vp_core::VocabAlgo;
use vp_data::{BpeTokenizer, PackedDataset, TextCorpus};
use vp_runtime::data::{DataSource, Microbatch};
use vp_runtime::{train_pipeline_on, train_reference_on, Mode, ScheduleFamily, TinyConfig};

fn bpe_source(seq_len: usize, vocab_target: usize) -> (DataSource, usize) {
    let corpus = TextCorpus::new(21);
    let text = corpus.text(120);
    let tok = BpeTokenizer::train(&text, vocab_target);
    let ids = tok.encode(&text);
    let ds = PackedDataset::new(ids, seq_len).expect("enough tokens");
    let samples: Vec<Microbatch> = ds
        .epoch(0)
        .into_iter()
        .map(|s| Microbatch {
            tokens: s.tokens,
            labels: s.labels,
        })
        .collect();
    (DataSource::Fixed(Arc::new(samples)), tok.vocab_size())
}

#[test]
fn pipelined_training_on_bpe_data_matches_reference() {
    let (source, vocab) = bpe_source(16, 320);
    let config = TinyConfig {
        vocab,
        ..TinyConfig::default()
    };
    let reference = train_reference_on(&config, 5, &source).unwrap();
    for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
        let pipeline = train_pipeline_on(
            &config,
            4,
            Mode::Vocab(algo),
            ScheduleFamily::OneFOneB,
            5,
            &source,
        )
        .unwrap();
        for (i, (r, p)) in reference.iter().zip(&pipeline).enumerate() {
            assert!(
                (r - p).abs() < 1e-3 * (1.0 + r.abs()),
                "{algo:?} iter {i}: {r} vs {p}"
            );
        }
    }
}

#[test]
fn loss_decreases_on_real_text() {
    let (source, vocab) = bpe_source(16, 320);
    let config = TinyConfig {
        vocab,
        ..TinyConfig::default()
    };
    let losses = train_pipeline_on(
        &config,
        2,
        Mode::Vocab(VocabAlgo::Alg2),
        ScheduleFamily::OneFOneB,
        12,
        &source,
    )
    .unwrap();
    assert!(
        losses.last().unwrap() < &losses[0],
        "loss should fall on structured text: {losses:?}"
    );
}
