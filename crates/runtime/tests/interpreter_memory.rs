//! Memory-equivalence property tests: the numeric interpreter's observed
//! peak resident activations (`TrainReport::exec`) must match the
//! analytical executor's memory trace pass-for-pass, for every schedule
//! family the engine runs. Both sides count `F` (+1) / `B` (−1) events in
//! per-device program order, so the equality is exact — any drift means
//! the runtime holds activations longer than the §5.2 analysis claims.

use vp_runtime::{train_schedule, DataSource, SyntheticCorpus, TinyConfig};
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::generators;
use vp_schedule::pass::{Schedule, VocabVariant};

const SWEEP_P: [usize; 3] = [2, 3, 4];
const SWEEP_M: [u32; 3] = [4, 6, 8];
const VARIANTS: [VocabVariant; 2] = [VocabVariant::Alg1, VocabVariant::Alg2];

/// Trains one iteration of `schedule` and returns the interpreter's
/// observed per-device peak resident microbatch-chunk activations.
fn numeric_peaks(schedule: &Schedule) -> Vec<usize> {
    let config = TinyConfig {
        layers: schedule.virtual_stages(),
        microbatches: schedule.num_microbatches() as usize,
        ..TinyConfig::default()
    };
    let corpus = DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    let report = train_schedule(&config, schedule, 1, &corpus).unwrap();
    report.exec.peak_resident_microbatches
}

/// Runs the analytical executor on the same schedule and returns its
/// peak resident microbatches.
fn analytical_peaks(schedule: &Schedule, times: PassTimes) -> Vec<usize> {
    let costs = UnitCosts::new(times, schedule.chunks());
    let report = Executor::new(&costs).run(schedule).unwrap();
    report.peak_resident_microbatches
}

fn assert_peaks_match(label: &str, schedule: &Schedule, times: PassTimes) -> Vec<usize> {
    let analytical = analytical_peaks(schedule, times);
    let numeric = numeric_peaks(schedule);
    assert_eq!(
        numeric, analytical,
        "{label}: numeric vs analytical peak resident activations"
    );
    analytical
}

#[test]
fn vocab_1f1b_peaks_match_analysis_and_paper_bounds() {
    let times = PassTimes::default();
    for p in SWEEP_P {
        for m in SWEEP_M {
            for variant in VARIANTS {
                let schedule = generators::vocab_1f1b(p, m, variant, times, true);
                let peaks =
                    assert_peaks_match(&format!("vocab p={p} m={m} {variant:?}"), &schedule, times);
                // §5.2: relative to plain 1F1B's warmup peak of p on device
                // 0, Algorithm 1 keeps 2 extra in-flight microbatches and
                // Algorithm 2 keeps 1 (both capped by m).
                let extra = match variant {
                    VocabVariant::Alg1 => 2,
                    VocabVariant::Alg2 => 1,
                    VocabVariant::Naive => unreachable!(),
                };
                assert_eq!(
                    peaks[0],
                    (p + extra).min(m as usize),
                    "vocab p={p} m={m} {variant:?}: device-0 peak"
                );
            }
        }
    }
}

#[test]
fn zb_vocab_1f1b_peaks_match_analysis() {
    let times = PassTimes {
        f: 1.0,
        b: 1.0,
        w: 1.0,
        ..PassTimes::default()
    };
    for p in SWEEP_P {
        for m in SWEEP_M {
            for variant in VARIANTS {
                let schedule = generators::zb_vocab_1f1b(p, m, variant, times, true);
                let peaks =
                    assert_peaks_match(&format!("zb p={p} m={m} {variant:?}"), &schedule, times);
                // Splitting B into B/W defers weight gradients, not
                // activations: the zero-bubble peaks equal the 1F1B ones.
                let extra = if variant == VocabVariant::Alg1 { 2 } else { 1 };
                assert_eq!(peaks[0], (p + extra).min(m as usize));
            }
        }
    }
}

#[test]
fn interleaved_vocab_1f1b_peaks_match_analysis() {
    let times = PassTimes {
        f: 0.5,
        b: 1.0,
        ..PassTimes::default()
    };
    for p in SWEEP_P {
        for m in SWEEP_M {
            for variant in VARIANTS {
                let schedule = generators::interleaved_vocab_1f1b(p, 2, m, variant, times, true);
                assert_peaks_match(
                    &format!("interleaved p={p} m={m} {variant:?}"),
                    &schedule,
                    times,
                );
            }
        }
    }
}
