//! Serving-path integration tests: the pipelined, KV-cached,
//! vocabulary-sharded decode engine against the single-device
//! full-context reference, and KV-cache arena hygiene across request
//! retirement.

use std::sync::{Mutex, MutexGuard, OnceLock};

use vp_runtime::serve::{
    greedy_matches_reference, reference_decode, Request, ServeConfig, ServeEngine, WorkloadSpec,
};
use vp_runtime::TinyConfig;
use vp_tensor::alloc;

/// Serializes tests that read the process-global arena counters.
fn arena_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn serve_config(devices: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        model: TinyConfig::default(),
        devices,
        max_batch,
        top_k: 4,
        ..ServeConfig::default()
    }
}

fn closed_loop(requests: usize, seed: u64) -> Vec<Request> {
    WorkloadSpec {
        requests,
        rate: None,
        prompt_len: (2, 6),
        output_len: (1, 8),
        seed,
    }
    .generate(TinyConfig::default().vocab, TinyConfig::default().seq_len)
}

#[test]
fn greedy_decode_is_bitwise_equal_to_reference_across_shard_counts() {
    for devices in [1, 2, 4] {
        let config = serve_config(devices, 3);
        let requests = closed_loop(6, 100 + devices as u64);
        assert!(
            greedy_matches_reference(&config, &requests).unwrap(),
            "tokens diverged from reference at p={devices}"
        );
    }
}

#[test]
fn overlapped_decode_is_bitwise_equal_to_reference_across_shard_counts() {
    // Splitting S from T moves *when* the sampling barrier resolves, not
    // what it computes: tokens must stay bitwise pinned to the reference.
    for devices in [1, 2, 4] {
        let mut config = serve_config(devices, 3);
        config.overlap = true;
        let requests = closed_loop(6, 100 + devices as u64);
        assert!(
            greedy_matches_reference(&config, &requests).unwrap(),
            "overlap tokens diverged from reference at p={devices}"
        );
    }
}

#[test]
fn chunked_prefill_matches_the_reference_at_every_chunk_size() {
    // Prompts fed 1, 3 or 8 tokens at a time must land on the same
    // greedy continuation (attention over a chunk is bitwise equal to
    // token-at-a-time attention against the same KV prefix).
    for chunk in [1, 3, 8] {
        let mut config = serve_config(2, 3);
        config.prefill_chunk = chunk;
        let requests = closed_loop(6, 77);
        assert!(
            greedy_matches_reference(&config, &requests).unwrap(),
            "tokens diverged from reference at prefill_chunk={chunk}"
        );
    }
}

#[test]
fn tiny_kv_pool_applies_backpressure_and_still_completes_every_request() {
    // A pool that fits roughly one request at a time turns admission into
    // backpressure: requests queue for blocks instead of a device pool
    // panicking mid-flight, and every request still finishes.
    let mut config = serve_config(2, 4);
    config.kv_block = 2;
    // Worst case per request: ⌈(6+8)/2⌉ blocks × 2 layers/device = 14.
    config.kv_capacity_blocks = Some(14);
    let requests = closed_loop(8, 55);
    let want: usize = requests.iter().map(|r| r.output_len).sum();
    let mut engine = ServeEngine::start(config).unwrap();
    let run = engine.serve(&requests);
    engine.shutdown();
    assert_eq!(run.completions.len(), 8);
    assert_eq!(run.tokens(), want);
}

#[test]
fn kv_outstanding_returns_to_baseline_at_every_pipeline_depth() {
    // Regression: at p=1 the old engine leaked one buffer per retired
    // request (masked at p≥2 by release over-counting in the packet
    // path). Every depth must now return to its post-warmup baseline.
    let _guard = arena_lock();
    for devices in [1, 2, 4] {
        let config = serve_config(devices, 2);
        let mut engine = ServeEngine::start(config).unwrap();
        engine.serve(&closed_loop(4, 50 + devices as u64));
        let baseline = alloc::stats().outstanding;
        let run = engine.serve(&closed_loop(6, 60 + devices as u64));
        assert_eq!(run.completions.len(), 6);
        assert_eq!(
            alloc::stats().outstanding,
            baseline,
            "serving at p={devices} leaked arena buffers"
        );
        engine.shutdown();
    }
}

#[test]
fn continuous_batching_completes_every_request_under_poisson_load() {
    let config = serve_config(2, 4);
    let requests = WorkloadSpec {
        requests: 12,
        rate: Some(200.0),
        prompt_len: (2, 5),
        output_len: (1, 6),
        seed: 21,
    }
    .generate(config.model.vocab, config.model.seq_len);
    let mut engine = ServeEngine::start(config).unwrap();
    let run = engine.serve(&requests);
    engine.shutdown();
    assert_eq!(run.completions.len(), 12);
    let want: usize = requests.iter().map(|r| r.output_len).sum();
    assert_eq!(run.tokens(), want);
    assert!(run.occupancy() > 0.0 && run.occupancy() <= 1.0);
    assert_eq!(run.latency.len(), want);
    assert!(run.latency_quantile(0.99) >= run.latency_quantile(0.5));
}

#[test]
fn logprobs_are_finite_and_nonpositive() {
    let config = serve_config(2, 2);
    let mut engine = ServeEngine::start(config).unwrap();
    let run = engine.serve(&closed_loop(4, 31));
    engine.shutdown();
    for c in &run.completions {
        for &lp in &c.logprobs {
            assert!(lp.is_finite() && lp <= 0.0, "logprob {lp}");
        }
    }
}

#[test]
fn retired_requests_release_their_kv_caches_back_to_the_arena() {
    let _guard = arena_lock();
    let config = serve_config(2, 2);
    let mut engine = ServeEngine::start(config).unwrap();
    // Warm up: first wave of requests grows the caches.
    engine.serve(&closed_loop(4, 41));
    let baseline = alloc::stats().outstanding;
    alloc::reset_counters();
    // Steady state: every retirement must return its buffers, so
    // outstanding ends where it started and readmissions reuse the pool.
    let run = engine.serve(&closed_loop(8, 42));
    assert_eq!(run.completions.len(), 8);
    let after = alloc::stats();
    assert_eq!(
        after.outstanding, baseline,
        "request retirement leaked arena buffers"
    );
    assert!(
        after.reuse_ratio() > 0.5,
        "steady-state serving should reuse pooled buffers, ratio {}",
        after.reuse_ratio()
    );
    engine.shutdown();
}

#[test]
fn engine_rejects_bad_configurations() {
    let mut config = serve_config(3, 2);
    // 4 layers do not divide over 3 devices.
    assert!(ServeEngine::start(config.clone()).is_err());
    config.devices = 0;
    assert!(ServeEngine::start(config).is_err());
}

#[test]
fn reference_decode_is_deterministic_and_in_vocabulary() {
    let config = TinyConfig::default();
    let prompt = [3usize, 17, 5];
    let a = reference_decode(&config, &prompt, 6).unwrap();
    let b = reference_decode(&config, &prompt, 6).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 6);
    assert!(a.iter().all(|&t| t < config.vocab));
}
