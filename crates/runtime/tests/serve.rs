//! Serving-path integration tests: the pipelined, KV-cached,
//! vocabulary-sharded decode engine against the single-device
//! full-context reference, and KV-cache arena hygiene across request
//! retirement.

use std::sync::{Mutex, MutexGuard, OnceLock};

use vp_runtime::serve::{
    greedy_matches_reference, reference_decode, Request, ServeConfig, ServeEngine, WorkloadSpec,
};
use vp_runtime::TinyConfig;
use vp_tensor::alloc;

/// Serializes tests that read the process-global arena counters.
fn arena_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn serve_config(devices: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        model: TinyConfig::default(),
        devices,
        max_batch,
        top_k: 4,
    }
}

fn closed_loop(requests: usize, seed: u64) -> Vec<Request> {
    WorkloadSpec {
        requests,
        rate: None,
        prompt_len: (2, 6),
        output_len: (1, 8),
        seed,
    }
    .generate(TinyConfig::default().vocab, TinyConfig::default().seq_len)
}

#[test]
fn greedy_decode_is_bitwise_equal_to_reference_across_shard_counts() {
    for devices in [1, 2, 4] {
        let config = serve_config(devices, 3);
        let requests = closed_loop(6, 100 + devices as u64);
        assert!(
            greedy_matches_reference(&config, &requests).unwrap(),
            "tokens diverged from reference at p={devices}"
        );
    }
}

#[test]
fn continuous_batching_completes_every_request_under_poisson_load() {
    let config = serve_config(2, 4);
    let requests = WorkloadSpec {
        requests: 12,
        rate: Some(200.0),
        prompt_len: (2, 5),
        output_len: (1, 6),
        seed: 21,
    }
    .generate(config.model.vocab, config.model.seq_len);
    let mut engine = ServeEngine::start(config).unwrap();
    let run = engine.serve(&requests);
    engine.shutdown();
    assert_eq!(run.completions.len(), 12);
    let want: usize = requests.iter().map(|r| r.output_len).sum();
    assert_eq!(run.tokens(), want);
    assert!(run.occupancy() > 0.0 && run.occupancy() <= 1.0);
    assert_eq!(run.latency.len(), want);
    assert!(run.latency_quantile(0.99) >= run.latency_quantile(0.5));
}

#[test]
fn logprobs_are_finite_and_nonpositive() {
    let config = serve_config(2, 2);
    let mut engine = ServeEngine::start(config).unwrap();
    let run = engine.serve(&closed_loop(4, 31));
    engine.shutdown();
    for c in &run.completions {
        for &lp in &c.logprobs {
            assert!(lp.is_finite() && lp <= 0.0, "logprob {lp}");
        }
    }
}

#[test]
fn retired_requests_release_their_kv_caches_back_to_the_arena() {
    let _guard = arena_lock();
    let config = serve_config(2, 2);
    let mut engine = ServeEngine::start(config).unwrap();
    // Warm up: first wave of requests grows the caches.
    engine.serve(&closed_loop(4, 41));
    let baseline = alloc::stats().outstanding;
    alloc::reset_counters();
    // Steady state: every retirement must return its buffers, so
    // outstanding ends where it started and readmissions reuse the pool.
    let run = engine.serve(&closed_loop(8, 42));
    assert_eq!(run.completions.len(), 8);
    let after = alloc::stats();
    assert_eq!(
        after.outstanding, baseline,
        "request retirement leaked arena buffers"
    );
    assert!(
        after.reuse_ratio() > 0.5,
        "steady-state serving should reuse pooled buffers, ratio {}",
        after.reuse_ratio()
    );
    engine.shutdown();
}

#[test]
fn engine_rejects_bad_configurations() {
    let mut config = serve_config(3, 2);
    // 4 layers do not divide over 3 devices.
    assert!(ServeEngine::start(config.clone()).is_err());
    config.devices = 0;
    assert!(ServeEngine::start(config).is_err());
}

#[test]
fn reference_decode_is_deterministic_and_in_vocabulary() {
    let config = TinyConfig::default();
    let prompt = [3usize, 17, 5];
    let a = reference_decode(&config, &prompt, 6).unwrap();
    let b = reference_decode(&config, &prompt, 6).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 6);
    assert!(a.iter().all(|&t| t < config.vocab));
}
