//! Deterministic full-model construction shared by the reference trainer
//! and the pipeline shards, so both start from bit-identical weights (the
//! precondition for the Appendix E convergence comparison).

use vp_model::block::TransformerBlock;
use vp_tensor::init::{gpt, seeded_rng};
use vp_tensor::rng::Rng;
use vp_tensor::Tensor;

/// Hyper-parameters of the tiny training runs (the runtime analogue of the
/// paper's 4B correctness model, scaled to CPU size).
#[derive(Debug, Clone, PartialEq)]
pub struct TinyConfig {
    /// Transformer layers (must be divisible by the device count).
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward expansion.
    pub ffn_mult: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Microbatches per iteration.
    pub microbatches: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Initialization / data seed.
    pub seed: u64,
    /// Tie the input and output embedding weights (§6.1). Supported by the
    /// single-device reference and the Vocabulary Parallelism runtime
    /// modes (the naive baseline would need a cross-stage gradient sync).
    pub tied: bool,
}

impl Default for TinyConfig {
    fn default() -> Self {
        TinyConfig {
            layers: 4,
            hidden: 32,
            heads: 4,
            ffn_mult: 2,
            seq_len: 16,
            vocab: 97,
            microbatches: 4,
            lr: 8e-3,
            seed: 1234,
            tied: false,
        }
    }
}

/// A fully materialized model: the source of truth both trainers slice
/// their parameters from.
#[derive(Debug, Clone)]
pub struct FullModel {
    /// Input embedding table `[V, h]`.
    pub input_weight: Tensor,
    /// Learned positional embedding `[s, h]` (always lives on the first
    /// pipeline device, as the paper notes in §6.4).
    pub pos_weight: Tensor,
    /// Transformer blocks in pipeline order.
    pub blocks: Vec<TransformerBlock>,
    /// Output embedding table `[V, h]` (untied from the input, as in all
    /// paper experiments).
    pub output_weight: Tensor,
}

impl FullModel {
    /// Builds the model deterministically from `config.seed`. The RNG draw
    /// order (input, positional, blocks, output) is part of the contract:
    /// every caller with the same config gets identical tensors.
    pub fn build(config: &TinyConfig) -> Self {
        assert_eq!(config.hidden % config.heads, 0, "heads must divide hidden");
        let mut rng = seeded_rng(config.seed);
        let input_weight = gpt(&mut rng, config.vocab, config.hidden);
        let pos_weight = gpt(&mut rng, config.seq_len, config.hidden);
        let blocks = (0..config.layers)
            .map(|_| TransformerBlock::new(&mut rng, config.hidden, config.heads, config.ffn_mult))
            .collect();
        let output_weight = if config.tied {
            input_weight.clone()
        } else {
            gpt(&mut rng, config.vocab, config.hidden)
        };
        // Consume one extra draw so future extensions don't silently shift
        // the stream.
        let _ = rng.gen_f64();
        FullModel {
            input_weight,
            pos_weight,
            blocks,
            output_weight,
        }
    }

    /// The block range `[start, end)` hosted by `stage` of `devices`.
    ///
    /// # Panics
    ///
    /// Panics if the layer count is not divisible by `devices`.
    pub fn stage_blocks(&self, stage: usize, devices: usize) -> (usize, usize) {
        assert_eq!(
            self.blocks.len() % devices,
            0,
            "layers must divide evenly for the runtime"
        );
        let per = self.blocks.len() / devices;
        (stage * per, (stage + 1) * per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let cfg = TinyConfig::default();
        let a = FullModel::build(&cfg);
        let b = FullModel::build(&cfg);
        assert_eq!(a.input_weight, b.input_weight);
        assert_eq!(a.output_weight, b.output_weight);
        assert_eq!(a.pos_weight, b.pos_weight);
        assert_eq!(a.blocks.len(), 4);
    }

    #[test]
    fn different_seed_different_model() {
        let mut cfg = TinyConfig::default();
        let a = FullModel::build(&cfg);
        cfg.seed = 999;
        let b = FullModel::build(&cfg);
        assert!(a.input_weight.max_abs_diff(&b.input_weight).unwrap() > 0.0);
    }

    #[test]
    fn stage_blocks_tile() {
        let model = FullModel::build(&TinyConfig::default());
        let (s0, e0) = model.stage_blocks(0, 2);
        let (s1, e1) = model.stage_blocks(1, 2);
        assert_eq!((s0, e0, s1, e1), (0, 2, 2, 4));
    }
}
