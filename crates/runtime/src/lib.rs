#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Thread-per-stage pipeline-parallel training runtime with real numerics.
//!
//! This crate is the executable counterpart of the paper's Appendix E
//! (correctness evaluation): it trains a small GPT with *pure pipeline
//! parallelism* across in-process "devices" (threads), with the vocabulary
//! layers either placed naively (first/last stage, the Megatron baseline)
//! or partitioned across all devices with the paper's Algorithms 1/2 (or
//! the naive 3-barrier grouping). Loss trajectories must match the
//! single-device reference — the analogue of the paper's Figure 17.
//!
//! * [`data`] — deterministic synthetic corpora (the stand-in for the
//!   paper's customized C4 dataset; both sides see identical tokens).
//! * [`model`] — full-model construction from a seed, shared by the
//!   reference and the sharded runtimes so initial weights are
//!   bit-identical.
//! * [`mod@reference`] — the single-device trainer.
//! * [`checkpoint`] — a resumable single-device trainer with exact
//!   save/restore of weights, Adam moments and step count.
//! * [`distributed_ckpt`] — per-device shard checkpointing of the
//!   *pipelined* trainer, resuming bit-identically.
//! * [`dp`] — data-parallel composition (§6.2's orthogonality claim).
//! * [`engine`] — the generic schedule interpreter (pass-VM): per-device
//!   threads walk *any* validated `vp-schedule` pass list, dispatching on
//!   pass kind alone — `F`/`B`/`W` transformer passes, the vocabulary
//!   `S`/`T` passes, sharded input passes — exchange activations over
//!   `vp-collectives` point-to-point channels, overlap the `C1` barrier on
//!   a per-device communication stream, and step Adam locally. Its
//!   [`train_schedule`] entry point reports real
//!   pass timings in the simulator's `ExecReport` shape.
//! * [`grid`] — 2D grid execution: the schedule's pipeline axis × a
//!   Megatron-style tensor-parallel axis, with each stage's transformer
//!   blocks sharded over its grid row (all-reduce or PSA synchronization).
//! * [`pipeline`] — schedule-family front end over the engine: maps a
//!   `(Mode, ScheduleFamily)` selection onto the matching generator.
//! * [`serve`] — forward-only inference serving: per-layer KV caches from
//!   the buffer arena, continuous batching, and the Algorithm-2 output
//!   layer repurposed as a single-barrier sampling merge, bitwise equal
//!   to a single-device full-context reference under greedy decoding.
//!
//! Internal engine modules: `comm` (tag spaces, stage geometry), `state`
//! (activation/vocabulary stores, barrier slots), `vocab`
//! (vocabulary-layer pass handlers).

pub mod checkpoint;
mod comm;
pub mod data;
pub mod distributed_ckpt;
pub mod dp;
pub mod engine;
pub mod eval;
pub mod grid;
pub mod model;
pub mod pipeline;
pub mod reference;
pub mod serve;
mod state;
mod vocab;

pub use checkpoint::ReferenceTrainer;
pub use data::{DataSource, SyntheticCorpus};
pub use distributed_ckpt::{train_pipeline_checkpointed, PipelineCheckpoint};
pub use dp::train_pipeline_dp;
pub use engine::{mode_of_schedule, train_schedule, train_schedule_traced, TrainReport};
pub use eval::EvalReport;
pub use grid::train_schedule_grid;
pub use model::{FullModel, TinyConfig};
pub use pipeline::{train_pipeline, train_pipeline_on, train_pipeline_with, Mode, ScheduleFamily};
pub use reference::{train_reference, train_reference_on};
pub use serve::{greedy_matches_reference, reference_decode, ServeConfig, ServeEngine};
pub use vp_model::TpSyncStyle;
pub use vp_schedule::grid::DeviceGrid;
pub use vp_trace::{TimelineReport, TraceLog, Tracer};
