//! Per-microbatch interpreter state: activation/vocabulary buffers keyed
//! by `(microbatch, chunk)` and the in-flight `C1` barrier slots.
//!
//! These stores are what the §5.2 memory analysis counts: every `F` pass
//! parks a chunk's block caches until the matching `B` consumes them, and
//! every `S` pass parks the broadcast activation plus softmax state until
//! the deferred `T` (and, for Algorithm 2, the last stage's `B`) drain
//! them. [`ActivationStore`] tracks the observed peak so the runtime can
//! be checked against the analytical executor's memory trace.

use std::collections::HashMap;
use vp_collectives::JobHandle;
use vp_core::output::{BarrierOutput, SState};
use vp_model::block::BlockCache;
use vp_tensor::nn::{CrossEntropyGrad, EmbeddingCache};
use vp_tensor::{Result, Tensor, TensorError};

/// Resident transformer activations, keyed `(microbatch, chunk)`: filled
/// by `F`, drained by `B`, with the peak population recorded for the
/// memory-equivalence property tests. Generic over the cache type so the
/// tensor-parallel blocks (whose caches carry sharded intermediates) share
/// the same bookkeeping as the full blocks.
pub(crate) struct ActivationStore<C = BlockCache> {
    caches: HashMap<(u32, u8), Vec<C>>,
    peak: usize,
}

impl<C> Default for ActivationStore<C> {
    fn default() -> Self {
        ActivationStore {
            caches: HashMap::new(),
            peak: 0,
        }
    }
}

impl<C> ActivationStore<C> {
    /// Parks the block caches produced by an `F` pass.
    pub(crate) fn insert(&mut self, microbatch: u32, chunk: u8, caches: Vec<C>) {
        self.caches.insert((microbatch, chunk), caches);
        self.peak = self.peak.max(self.caches.len());
    }

    /// Takes the caches for the matching `B` pass.
    pub(crate) fn remove(&mut self, microbatch: u32, chunk: u8) -> Option<Vec<C>> {
        self.caches.remove(&(microbatch, chunk))
    }

    /// Drops any leftover caches at the end of an iteration.
    pub(crate) fn clear(&mut self) {
        self.caches.clear();
    }

    /// The maximum number of simultaneously resident microbatch-chunk
    /// activations observed so far — the runtime counterpart of the
    /// executor's `peak_resident_microbatches`.
    pub(crate) fn peak_resident(&self) -> usize {
        self.peak
    }
}

/// Weight-gradient stash for zero-bubble `B`/`W` splitting: the `B` pass
/// computes activation gradients on a gradient-free clone and parks the
/// clone's weight gradients here; the deferred `W` pass folds them into
/// the real parameters.
#[derive(Default)]
pub(crate) struct WGradStash {
    grads: HashMap<(u32, u8), Vec<Tensor>>,
}

impl WGradStash {
    /// Parks the weight gradients of one `(microbatch, chunk)` backward.
    pub(crate) fn insert(&mut self, microbatch: u32, chunk: u8, grads: Vec<Tensor>) {
        self.grads.insert((microbatch, chunk), grads);
    }

    /// Takes the gradients for the matching `W` pass.
    pub(crate) fn remove(&mut self, microbatch: u32, chunk: u8) -> Option<Vec<Tensor>> {
        self.grads.remove(&(microbatch, chunk))
    }

    /// Drops any unconsumed stash entries at the end of an iteration.
    ///
    /// A validated zero-bubble schedule drains the stash exactly (every `B`
    /// has its `W`), so this is normally a no-op — but clearing here puts
    /// any leftover gradient buffers back into the tensor arena alongside
    /// the activation stores, keeping steady-state iterations
    /// allocation-free even for schedules that skip some `W` passes.
    pub(crate) fn clear(&mut self) {
        self.grads.clear();
    }
}

/// Per-microbatch vocabulary/output state on one device.
#[derive(Default)]
pub(crate) struct MbState {
    /// Baseline-mode embedding cache (token ids for the input backward).
    pub(crate) emb_cache: Option<EmbeddingCache>,
    /// The `C0`-broadcast activation, parked between `S` and `T`.
    pub(crate) x_c0: Option<Tensor>,
    /// The in-flight (or resolved) `C1` barrier.
    pub(crate) barrier: BarrierSlot,
    /// Baseline-mode last-stage output, parked between `F` and `B`.
    pub(crate) h_last: Option<Tensor>,
    /// Baseline-mode loss gradient, parked between `F` and `B`.
    pub(crate) out_grad: Option<CrossEntropyGrad>,
}

#[derive(Default)]
#[allow(clippy::large_enum_variant)] // one slot per in-flight microbatch; size is fine
pub(crate) enum BarrierSlot {
    #[default]
    Empty,
    Pending(JobHandle<Result<(SState, BarrierOutput)>>),
    /// Resolved barrier. The deferred `T` pass takes the softmax state;
    /// the last stage's `B` takes the `∇X` — in either order, so both are
    /// stored independently.
    Ready {
        state: Option<SState>,
        out: BarrierOutput,
    },
}

impl BarrierSlot {
    /// Waits for the in-flight barrier if necessary.
    fn resolve(&mut self) -> Result<()> {
        if let BarrierSlot::Pending(_) = self {
            let BarrierSlot::Pending(handle) = std::mem::take(self) else {
                unreachable!()
            };
            let (state, out) = handle.wait()?;
            *self = BarrierSlot::Ready {
                state: Some(state),
                out,
            };
        }
        match self {
            BarrierSlot::Ready { .. } => Ok(()),
            _ => Err(TensorError::InvalidArgument(
                "barrier consumed before S pass submitted it".into(),
            )),
        }
    }

    /// The globally rescaled softmax state (consumed by the `T` pass).
    pub(crate) fn take_state(&mut self) -> Result<(SState, f64)> {
        self.resolve()?;
        let BarrierSlot::Ready { state, out } = self else {
            unreachable!("just resolved")
        };
        let loss = out.loss;
        state
            .take()
            .map(|s| (s, loss))
            .ok_or_else(|| TensorError::InvalidArgument("barrier state consumed twice".into()))
    }

    /// The reduced `∇X` (consumed by the last stage's `B`, Algorithm 2).
    pub(crate) fn take_dx(&mut self) -> Result<Tensor> {
        self.resolve()?;
        let BarrierSlot::Ready { out, .. } = self else {
            unreachable!("just resolved")
        };
        out.dx.take().ok_or_else(|| {
            TensorError::InvalidArgument(
                "barrier did not produce ∇X (or it was consumed twice)".into(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_store_tracks_peak_population() {
        let mut store: ActivationStore = ActivationStore::default();
        store.insert(0, 0, Vec::new());
        store.insert(1, 0, Vec::new());
        assert!(store.remove(0, 0).is_some());
        store.insert(2, 0, Vec::new());
        // Peak was 2 simultaneously resident entries.
        assert_eq!(store.peak_resident(), 2);
        store.clear();
        assert!(store.remove(1, 0).is_none());
        // Peak survives the per-iteration clear.
        assert_eq!(store.peak_resident(), 2);
    }

    #[test]
    fn w_stash_round_trips_by_key() {
        let mut stash = WGradStash::default();
        stash.insert(3, 1, vec![Tensor::zeros(1, 1)]);
        assert!(stash.remove(3, 0).is_none());
        assert_eq!(stash.remove(3, 1).map(|g| g.len()), Some(1));
        assert!(stash.remove(3, 1).is_none());
    }

    #[test]
    fn empty_barrier_slot_reports_misuse() {
        let mut slot = BarrierSlot::default();
        assert!(slot.take_state().is_err());
        assert!(slot.take_dx().is_err());
    }
}
