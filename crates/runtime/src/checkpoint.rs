//! Resumable training: a [`ReferenceTrainer`] whose full state — weights,
//! Adam moments and the bias-correction timestep — round-trips through a
//! compact binary checkpoint, so training can stop and resume with
//! bit-identical results.

use crate::data::DataSource;
use crate::model::{FullModel, TinyConfig};
use crate::reference::{backward_blocks, forward_blocks};
use vp_model::block::TransformerBlock;
use vp_tensor::io::{read_tensor, read_u32, write_tensor, write_u32};
use vp_tensor::nn::{softmax_cross_entropy, Embedding};
use vp_tensor::optim::{Adam, Optimizer, Param};
use vp_tensor::{Result, TensorError};

const MAGIC: u32 = 0x5650_434B; // "VPCK"

/// A single-device trainer whose state can be checkpointed and restored.
#[derive(Debug, Clone)]
pub struct ReferenceTrainer {
    config: TinyConfig,
    input: Embedding,
    pos: Param,
    blocks: Vec<TransformerBlock>,
    output_w: Param,
    adam: Adam,
    /// Completed training iterations (indexes the data stream).
    iterations_done: u64,
}

impl ReferenceTrainer {
    /// Builds a fresh trainer from the config's seed.
    pub fn new(config: &TinyConfig) -> Self {
        let full = FullModel::build(config);
        ReferenceTrainer {
            config: config.clone(),
            input: Embedding::from_weight(full.input_weight),
            pos: Param::new(full.pos_weight),
            blocks: full.blocks,
            output_w: Param::new(full.output_weight),
            adam: Adam::new(config.lr),
            iterations_done: 0,
        }
    }

    /// Completed iterations so far.
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }

    /// The training configuration.
    pub fn config(&self) -> &TinyConfig {
        &self.config
    }

    /// The embedding table used by the forward pass (the shared output
    /// weight when tied).
    pub(crate) fn embedding_view(&self) -> Embedding {
        if self.config.tied {
            Embedding::from_weight(self.output_w.value().clone())
        } else {
            Embedding::from_weight(self.input.weight().clone())
        }
    }

    pub(crate) fn pos_view(&self) -> &vp_tensor::Tensor {
        self.pos.value()
    }

    pub(crate) fn blocks_view(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    pub(crate) fn output_weight_view(&self) -> &vp_tensor::Tensor {
        self.output_w.value()
    }

    /// The mean loss of running `iterations` more training iterations on
    /// `source`, continuing from the current state.
    ///
    /// # Errors
    ///
    /// Propagates tensor-shape errors (configuration bugs).
    pub fn train(&mut self, iterations: usize, source: &DataSource) -> Result<Vec<f64>> {
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let mut iter_loss = 0.0;
            for mb in source.iteration(self.iterations_done, self.config.microbatches) {
                let (embedded, emb_cache) = if self.config.tied {
                    Embedding::from_weight(self.output_w.value().clone()).forward(&mb.tokens)?
                } else {
                    self.input.forward(&mb.tokens)?
                };
                let x0 = embedded.add(self.pos.value())?;
                let (h, caches) = forward_blocks(&self.blocks, &x0)?;
                let logits = h.matmul_nt(self.output_w.value())?;
                let (out, grad) = softmax_cross_entropy(&logits, &mb.labels)?;
                iter_loss += out.loss;
                let dw_out = grad.dlogits.matmul_tn(&h)?;
                self.output_w.accumulate(&dw_out)?;
                let dh = grad.dlogits.matmul(self.output_w.value())?;
                let dx0 = backward_blocks(&mut self.blocks, &caches, &dh)?;
                self.pos.accumulate(&dx0)?;
                if self.config.tied {
                    let mut scatter = Embedding::from_weight(self.output_w.value().clone());
                    scatter.backward(&emb_cache, &dx0)?;
                    self.output_w.accumulate(scatter.params_mut()[0].grad())?;
                } else {
                    self.input.backward(&emb_cache, &dx0)?;
                }
            }
            losses.push(iter_loss / self.config.microbatches as f64);
            self.adam.step(&mut self.output_w)?;
            self.adam.step(&mut self.pos)?;
            for block in &mut self.blocks {
                for p in block.params_mut() {
                    self.adam.step(p)?;
                }
            }
            if !self.config.tied {
                for p in self.input.params_mut() {
                    self.adam.step(p)?;
                }
            }
            self.adam.next_iteration();
            self.iterations_done += 1;
        }
        Ok(losses)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params: Vec<&mut Param> = vec![&mut self.output_w, &mut self.pos];
        for block in &mut self.blocks {
            params.extend(block.params_mut());
        }
        params.extend(self.input.params_mut());
        params
    }

    /// Serializes the full trainer state (weights, Adam moments,
    /// timestep).
    pub fn save(&mut self) -> Vec<u8> {
        let mut buf = Vec::new();
        write_u32(&mut buf, MAGIC);
        write_u32(&mut buf, self.config.layers as u32);
        write_u32(&mut buf, self.config.hidden as u32);
        write_u32(&mut buf, self.config.vocab as u32);
        write_u32(&mut buf, self.adam.timestep() as u32);
        write_u32(&mut buf, self.iterations_done as u32);
        write_u32(&mut buf, u32::from(self.config.tied));
        let params = self.params_mut();
        write_u32(&mut buf, params.len() as u32);
        for p in params {
            write_tensor(&mut buf, p.value());
            let (m, v) = p.moments();
            write_tensor(&mut buf, m);
            write_tensor(&mut buf, v);
        }
        buf
    }

    /// Restores a trainer from a checkpoint produced by [`Self::save`].
    /// `config` must match the checkpointed hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for corrupted checkpoints
    /// or mismatched configurations.
    pub fn load(config: &TinyConfig, data: &[u8]) -> Result<Self> {
        let mut input = data;
        let bad = |what: &str| TensorError::InvalidArgument(format!("bad checkpoint: {what}"));
        if read_u32(&mut input)? != MAGIC {
            return Err(bad("magic"));
        }
        if read_u32(&mut input)? as usize != config.layers
            || read_u32(&mut input)? as usize != config.hidden
            || read_u32(&mut input)? as usize != config.vocab
        {
            return Err(bad("hyper-parameters differ from the provided config"));
        }
        let timestep = read_u32(&mut input)? as i32;
        let iterations_done = read_u32(&mut input)? as u64;
        let tied = read_u32(&mut input)? != 0;
        if tied != config.tied {
            return Err(bad("tied flag differs from the provided config"));
        }
        let n = read_u32(&mut input)? as usize;
        let mut trainer = ReferenceTrainer::new(config);
        trainer.adam.set_timestep(timestep);
        trainer.iterations_done = iterations_done;
        {
            let params = trainer.params_mut();
            if params.len() != n {
                return Err(bad("parameter count mismatch"));
            }
            for p in params {
                let value = read_tensor(&mut input)?;
                let m = read_tensor(&mut input)?;
                let v = read_tensor(&mut input)?;
                if value.shape() != p.value().shape() {
                    return Err(bad("parameter shape mismatch"));
                }
                *p = Param::from_state(value, m, v)?;
            }
        }
        Ok(trainer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;

    fn source(config: &TinyConfig) -> DataSource {
        DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ))
    }

    #[test]
    fn trainer_matches_free_function() {
        let config = TinyConfig::default();
        let mut trainer = ReferenceTrainer::new(&config);
        let a = trainer.train(5, &source(&config)).unwrap();
        let b = crate::reference::train_reference(&config, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_resume_is_bit_identical() {
        let config = TinyConfig::default();
        let src = source(&config);
        // Straight run: 8 iterations.
        let mut straight = ReferenceTrainer::new(&config);
        let full = straight.train(8, &src).unwrap();
        // Interrupted run: 4 + checkpoint + 4.
        let mut first = ReferenceTrainer::new(&config);
        let head = first.train(4, &src).unwrap();
        let blob = first.save();
        let mut resumed = ReferenceTrainer::load(&config, &blob).unwrap();
        assert_eq!(resumed.iterations_done(), 4);
        let tail = resumed.train(4, &src).unwrap();
        let stitched: Vec<f64> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, full, "resume must be exact");
    }

    #[test]
    fn load_rejects_mismatched_config() {
        let config = TinyConfig::default();
        let mut t = ReferenceTrainer::new(&config);
        let blob = t.save();
        let other = TinyConfig {
            hidden: 64,
            ..config
        };
        assert!(ReferenceTrainer::load(&other, &blob).is_err());
    }

    #[test]
    fn load_rejects_corruption() {
        let config = TinyConfig::default();
        let mut t = ReferenceTrainer::new(&config);
        let mut blob = t.save();
        blob.truncate(blob.len() / 2);
        assert!(ReferenceTrainer::load(&config, &blob).is_err());
        assert!(ReferenceTrainer::load(&config, &[1, 2, 3]).is_err());
    }

    #[test]
    fn tied_trainer_checkpoints_too() {
        let config = TinyConfig {
            tied: true,
            ..TinyConfig::default()
        };
        let src = source(&config);
        let mut straight = ReferenceTrainer::new(&config);
        let full = straight.train(6, &src).unwrap();
        let mut first = ReferenceTrainer::new(&config);
        let head = first.train(3, &src).unwrap();
        let mut resumed = ReferenceTrainer::load(&config, &first.save()).unwrap();
        let tail = resumed.train(3, &src).unwrap();
        let stitched: Vec<f64> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, full);
    }
}
