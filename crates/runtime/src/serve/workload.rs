//! Synthetic serving workloads: open-loop Poisson arrivals with a
//! configurable prompt/output length mix.
//!
//! The generator is deterministic from its seed — the same spec always
//! produces the same request stream (prompts, lengths *and* arrival
//! offsets), so serving runs are reproducible and the greedy-equivalence
//! check can replay the exact same requests against the reference.

use std::time::Duration;

use vp_tensor::init::seeded_rng;
use vp_tensor::rng::Rng;

/// One synthetic request: a prompt to prefill and a number of tokens to
/// generate, arriving `arrival` after the serving clock starts.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request id (its index in the generated stream).
    pub id: usize,
    /// Prompt token ids (all `< vocab`).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate after the prompt.
    pub output_len: usize,
    /// Arrival offset from the start of the run (zero in closed-loop
    /// specs: every request is queued from the beginning).
    pub arrival: Duration,
}

impl Request {
    /// Decode steps this request occupies a slot for: prompt prefill is
    /// token-at-a-time through the same decode path, then one step per
    /// generated token.
    pub fn steps(&self) -> usize {
        self.prompt.len() + self.output_len - 1
    }
}

/// Specification of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate in requests per second (Poisson process). `None`
    /// means closed-loop: every request arrives at time zero and the
    /// engine admits them as slots free up.
    pub rate: Option<f64>,
    /// Prompt length range `[min, max]` (inclusive), uniform mix.
    pub prompt_len: (usize, usize),
    /// Output length range `[min, max]` (inclusive), uniform mix.
    pub output_len: (usize, usize),
    /// Seed for prompts, lengths and arrival draws.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generates the deterministic request stream. Prompt + output length
    /// is clamped to `max_context` so every request fits the positional
    /// embedding table.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0`, a length range is inverted, or `max_context`
    /// cannot fit the minimum prompt plus one generated token.
    pub fn generate(&self, vocab: usize, max_context: usize) -> Vec<Request> {
        assert!(vocab > 0, "empty vocabulary");
        assert!(
            self.prompt_len.0 >= 1 && self.prompt_len.0 <= self.prompt_len.1,
            "bad prompt length range"
        );
        assert!(
            self.output_len.0 >= 1 && self.output_len.0 <= self.output_len.1,
            "bad output length range"
        );
        assert!(
            self.prompt_len.0 + self.output_len.0 <= max_context,
            "minimum request does not fit the context window"
        );
        let mut rng = seeded_rng(self.seed);
        let mut clock = 0.0f64;
        (0..self.requests)
            .map(|id| {
                let p_len = rng.gen_range(self.prompt_len.0..self.prompt_len.1 + 1);
                let o_len = rng.gen_range(self.output_len.0..self.output_len.1 + 1);
                // Clamp to the context window, preserving at least one
                // generated token.
                let p_len = p_len.min(max_context - 1);
                let o_len = o_len.min(max_context - p_len);
                let prompt = (0..p_len).map(|_| rng.gen_range(0..vocab)).collect();
                let arrival = match self.rate {
                    Some(rate) => {
                        // Exponential inter-arrival times: −ln(1−U)/λ.
                        clock += -(1.0 - rng.gen_f64()).ln() / rate;
                        Duration::from_secs_f64(clock)
                    }
                    None => Duration::ZERO,
                };
                Request {
                    id,
                    prompt,
                    output_len: o_len,
                    arrival,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: Option<f64>) -> WorkloadSpec {
        WorkloadSpec {
            requests: 32,
            rate,
            prompt_len: (2, 6),
            output_len: (1, 8),
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec(Some(100.0)).generate(97, 16);
        let b = spec(Some(100.0)).generate(97, 16);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.output_len, y.output_len);
            assert_eq!(x.arrival, y.arrival);
        }
    }

    #[test]
    fn requests_fit_the_context_window() {
        for r in spec(Some(50.0)).generate(97, 16) {
            assert!(r.prompt.len() + r.output_len <= 16, "request {}", r.id);
            assert!(r.output_len >= 1);
            assert!(r.prompt.iter().all(|&t| t < 97));
        }
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_roughly_match_the_rate() {
        let reqs = WorkloadSpec {
            requests: 2000,
            rate: Some(100.0),
            prompt_len: (2, 2),
            output_len: (1, 1),
            seed: 11,
        }
        .generate(97, 16);
        for w in reqs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        let span = reqs.last().unwrap().arrival.as_secs_f64();
        let rate = reqs.len() as f64 / span;
        assert!((rate - 100.0).abs() < 15.0, "empirical rate {rate}");
    }

    #[test]
    fn closed_loop_arrivals_are_zero() {
        assert!(spec(None)
            .generate(97, 16)
            .iter()
            .all(|r| r.arrival == Duration::ZERO));
    }
}
