//! Forward-only inference serving on the pass-VM: paged per-layer KV
//! caches from the buffer arena, continuous batching with chunked prefill
//! over request slots, and the paper's Algorithm-2 output layer
//! repurposed as a single-barrier sampling merge (sharded logits → local
//! top-k/softmax stats → one `all_gather` → identical greedy pick on
//! every rank), optionally split into a submit/deferred-merge pair so the
//! barrier overlaps the next slot's forward.
//!
//! * [`engine`] — the [`ServeEngine`]: persistent device threads walking
//!   [`vp_schedule::generators::decode_pipeline`] (inline barrier) or
//!   [`vp_schedule::generators::decode_pipeline_overlap`] (S/T
//!   split-batch overlap via a per-device comm stream) pass lists —
//!   both families statically verified by `vp_check::check_decode` at
//!   startup — plus the continuous-batching driver with paged-KV
//!   admission backpressure.
//! * [`workload`] — deterministic synthetic request streams with Poisson
//!   (open-loop) or closed-loop arrivals.
//! * [`reference_decode`] — the single-device oracle: full-context
//!   recompute per step, full-vocabulary argmax. The pipelined,
//!   KV-cached, vocabulary-sharded engine must reproduce its greedy
//!   token stream **bitwise** ([`greedy_matches_reference`]).

pub mod engine;
pub mod workload;

pub use engine::{Completion, ServeConfig, ServeEngine, ServeRun};
pub use workload::{Request, WorkloadSpec};

use crate::model::{FullModel, TinyConfig};
use crate::reference::forward_blocks;
use vp_tensor::ops::argmax_rows;
use vp_tensor::{Result, Tensor};

/// Greedy decode on a single device with **no** KV cache and **no**
/// sharding: re-embeds and re-runs the whole context every step, takes the
/// full-vocabulary argmax of the last row's logits. The slowest, most
/// obviously correct decoder — the oracle the serving path is checked
/// against.
///
/// # Errors
///
/// Propagates shape errors (prompt too long for `seq_len`, out-of-vocab
/// token).
pub fn reference_decode(
    config: &TinyConfig,
    prompt: &[usize],
    output_len: usize,
) -> Result<Vec<usize>> {
    let full = FullModel::build(config);
    let mut ctx = prompt.to_vec();
    let mut out = Vec::with_capacity(output_len);
    for _ in 0..output_len {
        let n = ctx.len();
        let mut x = Tensor::zeros(n, config.hidden);
        for (r, &t) in ctx.iter().enumerate() {
            x.row_mut(r).copy_from_slice(full.input_weight.row(t));
        }
        let x = x.add(&full.pos_weight.slice_rows(0, n)?)?;
        let (h, _) = forward_blocks(&full.blocks, &x)?;
        let logits = h.slice_rows(n - 1, n)?.matmul_nt(&full.output_weight)?;
        let token = argmax_rows(&logits)[0];
        out.push(token);
        ctx.push(token);
    }
    Ok(out)
}

/// Runs `requests` through a fresh engine and checks every completion's
/// token stream is **bitwise identical** to [`reference_decode`] on the
/// same prompt. Returns `true` only if all match.
///
/// # Errors
///
/// Propagates engine-start and reference-forward errors.
pub fn greedy_matches_reference(config: &ServeConfig, requests: &[Request]) -> Result<bool> {
    let mut engine = ServeEngine::start(config.clone())?;
    let run = engine.serve(requests);
    engine.shutdown();
    if run.completions.len() != requests.len() {
        return Ok(false);
    }
    for c in &run.completions {
        let r = &requests[c.id];
        let expected = reference_decode(&config.model, &r.prompt, r.output_len)?;
        if c.tokens != expected {
            return Ok(false);
        }
    }
    Ok(true)
}
