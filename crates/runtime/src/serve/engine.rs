//! The forward-only decode engine: persistent per-device threads walking
//! validated decode pass lists, with continuous batching driven from a
//! central admission loop.
//!
//! Each "device" thread hosts its pipeline stage's transformer blocks
//! (with one paged, arena-backed [`KvCache`] per slot per hosted layer,
//! all drawing blocks from a single bounded per-device [`KvBlockPool`]),
//! its vocabulary shard of the input embedding (Appendix C) and its shard
//! of the output layer. A decode step walks the forward-only §4.2 pass
//! structure for the active slots:
//!
//! * `InputF k` — every shard that owns at least one token of the slot's
//!   chunk embeds its owned tokens (packed, in chunk order) and hands the
//!   rows to stage 0 (the `TAG_INPART` fan-in training uses);
//! * `F k` — stage 0 reassembles the chunk from the per-owner packets,
//!   adds the positional rows, every stage runs its blocks through
//!   [`TransformerBlock::forward_decode`] against the slot's KV caches
//!   and forwards the activation (`TAG_ACT`); the last stage broadcasts
//!   the final token's hidden row to every shard (`C0`);
//! * `S k` — every shard computes its sharded logits, local softmax stats
//!   and local top-k (Algorithm 2's single-barrier decode). Inline mode
//!   completes the merge immediately ([`OutputShard::barrier_decode`]);
//!   overlap mode only *submits* the `all_gather` to the device's
//!   [`CommStream`] and keeps computing (§6.1's stream trick);
//! * `T k` — overlap mode only: joins the stream job for microbatch `k`
//!   and runs the deterministic merge ([`merge_decode`]) on the gathered
//!   payloads. The merge is bitwise identical to the inline path — only
//!   *when* the barrier resolves moves.
//!
//! **Chunked prefill**: prompts are admitted in chunks of at most
//! [`ServeConfig::prefill_chunk`] tokens per step, so a long prompt never
//! monopolises a whole decode step and tail latency of concurrently
//! decoding requests stays bounded. Mid-prefill samples are computed (the
//! schedule shape is batch-size-only) and discarded by the driver.
//!
//! **Admission backpressure**: the driver reserves KV blocks for a
//! request's whole context before admitting it and releases them at
//! retirement; a request that does not fit waits in the queue instead of
//! exhausting a device's [`KvBlockPool`] mid-flight.
//!
//! The pass lists are the same ones [`vp_check::check_decode`] verifies at
//! engine start, so the executed communication pattern is statically known
//! deadlock- and race-free before the first request arrives.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vp_collectives::{Collective, CollectiveGroup, CommStream, JobHandle, P2pEndpoint, P2pNetwork};
use vp_core::{merge_decode, InputShard, OutputShard, TokenChoice};
use vp_model::block::TransformerBlock;
use vp_model::partition::VocabPartition;
use vp_schedule::generators::{decode_pipeline, decode_pipeline_overlap};
use vp_schedule::pass::PassKind;
use vp_schedule::Schedule;
use vp_tensor::nn::{KvBlockPool, KvCache, DEFAULT_BLOCK_TOKENS};
use vp_tensor::{Result, Tensor, TensorError};

use crate::comm::{stage_tag, to_packet, TAG_ACT, TAG_C0, TAG_INPART};
use crate::model::{FullModel, TinyConfig};
use crate::serve::workload::Request;

/// Configuration of the serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The model to serve. `seq_len` bounds the context window
    /// (prompt + generated tokens per request).
    pub model: TinyConfig,
    /// Pipeline devices (must divide `model.layers`).
    pub devices: usize,
    /// Continuous-batching slot count: requests concurrently in flight.
    pub max_batch: usize,
    /// Candidates each shard contributes to the sampling merge.
    pub top_k: usize,
    /// Tokens per paged-KV block ([`DEFAULT_BLOCK_TOKENS`] by default).
    pub kv_block: usize,
    /// Per-device KV block-pool capacity. `None` derives the exact-fit
    /// capacity `max_batch · layers_per_device · ⌈seq_len / kv_block⌉`,
    /// which can never reject a full batch; a smaller explicit value
    /// turns into admission backpressure, never a mid-flight panic.
    pub kv_capacity_blocks: Option<usize>,
    /// Maximum prompt tokens fed per request per decode step during
    /// prefill (chunked prefill; decode steps always feed one token).
    pub prefill_chunk: usize,
    /// Overlap the sampling `all_gather` with transformer compute by
    /// splitting each step's S pass from its merge (T pass) and running
    /// the collective on a per-device communication stream.
    pub overlap: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            model: TinyConfig::default(),
            devices: 2,
            max_batch: 4,
            top_k: 4,
            kv_block: DEFAULT_BLOCK_TOKENS,
            kv_capacity_blocks: None,
            prefill_chunk: 4,
            overlap: false,
        }
    }
}

/// One slot's work in a decode step.
#[derive(Debug, Clone)]
struct StepSlot {
    /// Slot index (selects the KV caches).
    slot: usize,
    /// Tokens fed at this step: a prompt chunk during prefill (at most
    /// `prefill_chunk` of them), the single previous sample during
    /// generation. Never empty.
    tokens: Vec<usize>,
    /// Position of `tokens[0]` in the slot's context; the chunk occupies
    /// consecutive positions from there.
    pos0: usize,
}

/// One decode step's plan, broadcast to every device thread.
#[derive(Debug, Clone)]
struct StepPlan {
    /// Slots whose caches must be released before the step runs (their
    /// request retired after the previous step).
    retire: Vec<usize>,
    /// Active entries; index = the schedule's microbatch id.
    entries: Vec<StepSlot>,
}

enum Cmd {
    Step(StepPlan),
    Stop,
}

/// A finished request: the tokens it generated and their log-probs.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: usize,
    /// Greedy-decoded tokens, `output_len` of them.
    pub tokens: Vec<usize>,
    /// Per-token log-probabilities under the global softmax.
    pub logprobs: Vec<f32>,
}

/// Measurements of one [`ServeEngine::serve`] run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Every finished request, in completion order.
    pub completions: Vec<Completion>,
    /// Decode steps executed.
    pub steps: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Wall time of the decode step that produced each generated token,
    /// in seconds (the per-token latency distribution).
    pub latency: Vec<f64>,
    /// Sum over steps of `active slots / max_batch`; divide by `steps`
    /// for mean batch occupancy.
    pub occupancy_sum: f64,
}

impl ServeRun {
    /// Total generated tokens.
    pub fn tokens(&self) -> usize {
        self.completions.iter().map(|c| c.tokens.len()).sum()
    }

    /// Generated tokens per wall-clock second.
    pub fn tokens_per_sec(&self) -> f64 {
        self.tokens() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Mean batch occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occupancy_sum / self.steps as f64
        }
    }

    /// The `q`-quantile (0..=1) of the per-token latency in seconds, by
    /// the nearest-rank method; `0.0` when no tokens were generated.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latency.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// A request occupying a slot.
struct Active {
    id: usize,
    prompt: Vec<usize>,
    output_len: usize,
    /// Tokens fed so far (prompt progress + generated count).
    fed: usize,
    tokens: Vec<usize>,
    logprobs: Vec<f32>,
    /// Per-device KV blocks reserved at admission, released at retire.
    reserved_blocks: usize,
}

impl Active {
    /// The token chunk to feed next and the position of its first token.
    fn next_feed(&self, prefill_chunk: usize) -> (Vec<usize>, usize) {
        if self.fed < self.prompt.len() {
            let c = prefill_chunk.min(self.prompt.len() - self.fed);
            (self.prompt[self.fed..self.fed + c].to_vec(), self.fed)
        } else {
            let tok = *self.tokens.last().expect("past prefill ⇒ generated ≥ 1");
            (vec![tok], self.fed)
        }
    }

    fn done(&self) -> bool {
        self.tokens.len() >= self.output_len
    }
}

/// The serving engine: `p` persistent device threads plus this driver.
pub struct ServeEngine {
    config: ServeConfig,
    /// Per-device KV block-pool capacity (all devices host the same layer
    /// count, so one scalar models every pool).
    per_device_blocks: usize,
    cmds: Vec<Sender<Cmd>>,
    results: Receiver<Vec<TokenChoice>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds the sharded model, statically verifies the decode pass list
    /// for every possible batch size (both the inline and the overlapped
    /// family), and spawns the device threads.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on an invalid
    /// configuration (zero devices/slots/chunk/block sizes, indivisible
    /// layers, a decode schedule that fails [`vp_check::check_decode`]).
    ///
    /// # Panics
    ///
    /// Panics if a device thread dies (a bug, not an input condition).
    pub fn start(config: ServeConfig) -> Result<Self> {
        let p = config.devices;
        if p == 0 || config.max_batch == 0 || config.top_k == 0 {
            return Err(TensorError::InvalidArgument(
                "devices, max_batch and top_k must all be nonzero".into(),
            ));
        }
        if config.kv_block == 0 || config.prefill_chunk == 0 {
            return Err(TensorError::InvalidArgument(
                "kv_block and prefill_chunk must both be nonzero".into(),
            ));
        }
        if !config.model.layers.is_multiple_of(p) {
            return Err(TensorError::InvalidArgument(format!(
                "{} layers do not divide over {p} devices",
                config.model.layers
            )));
        }
        // Every batch size the driver can submit must be statically clean,
        // for both pass-list families the engine can walk.
        for m in 1..=config.max_batch {
            let families: [(&str, Schedule); 2] = [
                ("decode-pipeline", decode_pipeline(p, m as u32)),
                (
                    "decode-pipeline-overlap",
                    decode_pipeline_overlap(p, m as u32),
                ),
            ];
            for (name, sched) in families {
                let report = vp_check::check_decode(&sched);
                if !report.is_clean() {
                    return Err(TensorError::InvalidArgument(format!(
                        "{name} schedule (p={p}, m={m}) failed vp-check: {:?}",
                        report.codes()
                    )));
                }
            }
        }
        let layers_per_dev = config.model.layers / p;
        let per_device_blocks = config.kv_capacity_blocks.unwrap_or(
            config.max_batch * layers_per_dev * config.model.seq_len.div_ceil(config.kv_block),
        );
        if per_device_blocks == 0 {
            return Err(TensorError::InvalidArgument(
                "kv_capacity_blocks must be nonzero".into(),
            ));
        }
        let full = FullModel::build(&config.model);
        let partition = VocabPartition::new(config.model.vocab, p);
        let endpoints = P2pNetwork::new(p);
        let comms = CollectiveGroup::new(p);
        let (res_tx, res_rx) = channel();
        let mut cmds = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (endpoint, comm) in endpoints.into_iter().zip(comms) {
            let rank = comm.rank();
            let (tx, rx) = channel();
            cmds.push(tx);
            let (b0, b1) = full.stage_blocks(rank, p);
            let pool =
                KvBlockPool::bounded(config.model.hidden, config.kv_block, per_device_blocks);
            let device = DeviceState {
                rank,
                world: p,
                blocks: full.blocks[b0..b1].to_vec(),
                input: InputShard::from_full(&full.input_weight, partition, rank)
                    .expect("partition matches the weight"),
                output: OutputShard::from_full(&full.output_weight, partition, rank)
                    .expect("partition matches the weight"),
                pos: (rank == 0).then(|| full.pos_weight.clone()),
                partition,
                kv: (0..config.max_batch)
                    .map(|_| (0..b1 - b0).map(|_| KvCache::with_pool(&pool)).collect())
                    .collect(),
                top_k: config.top_k,
                overlap: config.overlap,
                endpoint,
                comm: Arc::new(comm),
                stream: CommStream::new(),
            };
            let res_tx = res_tx.clone();
            handles.push(std::thread::spawn(move || device.run(&rx, &res_tx)));
        }
        Ok(ServeEngine {
            config,
            per_device_blocks,
            cmds,
            results: res_rx,
            handles,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Per-device KV blocks a request reserves for its whole lifetime
    /// (context rounded up to blocks, once per hosted layer).
    fn block_need(&self, prompt_len: usize, output_len: usize) -> usize {
        let layers_per_dev = self.config.model.layers / self.config.devices;
        (prompt_len + output_len).div_ceil(self.config.kv_block) * layers_per_dev
    }

    /// Serves a request stream with continuous batching and returns the
    /// run's completions and measurements.
    ///
    /// Requests are admitted into free slots once their arrival time has
    /// passed *and* their whole context fits the unreserved remainder of
    /// the per-device KV block pools (open-loop; closed-loop streams have
    /// all arrivals at zero and admission is limited only by free slots
    /// and free blocks). Prefill feeds prompt chunks of at most
    /// `prefill_chunk` tokens through the same decode path, interleaved
    /// with single-token decode steps of the other slots; retired
    /// requests release their KV blocks back to the pool (and the pool's
    /// backing arena) before the next step touches the slot.
    ///
    /// # Panics
    ///
    /// Panics if a request's context exceeds the model's `seq_len` or the
    /// KV pool capacity, or if a device thread died.
    pub fn serve(&mut self, requests: &[Request]) -> ServeRun {
        let seq_len = self.config.model.seq_len;
        for r in requests {
            assert!(
                r.prompt.len() + r.output_len <= seq_len,
                "request {} needs {} positions, model has {seq_len}",
                r.id,
                r.prompt.len() + r.output_len
            );
            assert!(!r.prompt.is_empty(), "request {} has an empty prompt", r.id);
            let need = self.block_need(r.prompt.len(), r.output_len);
            assert!(
                need <= self.per_device_blocks,
                "request {} needs {need} KV blocks per device, pool holds {}",
                r.id,
                self.per_device_blocks
            );
        }
        let prefill_chunk = self.config.prefill_chunk;
        let mut pending: VecDeque<&Request> = requests.iter().collect();
        let mut slots: Vec<Option<Active>> = (0..self.config.max_batch).map(|_| None).collect();
        let mut retire: Vec<usize> = Vec::new();
        // KV blocks currently reserved per device by in-flight requests.
        let mut reserved = 0usize;
        let mut run = ServeRun {
            completions: Vec::new(),
            steps: 0,
            wall: Duration::ZERO,
            latency: Vec::new(),
            occupancy_sum: 0.0,
        };
        let start = Instant::now();
        loop {
            // Admission: next arrived-and-fitting request into each free
            // slot (FIFO — a too-big head of queue waits rather than
            // being overtaken, so admission cannot starve it).
            let now = start.elapsed();
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    let Some(r) = pending.front() else { continue };
                    if r.arrival > now {
                        continue;
                    }
                    let need = self.block_need(r.prompt.len(), r.output_len);
                    if reserved + need > self.per_device_blocks {
                        continue;
                    }
                    let r = pending.pop_front().expect("front just checked");
                    reserved += need;
                    *slot = Some(Active {
                        id: r.id,
                        prompt: r.prompt.clone(),
                        output_len: r.output_len,
                        fed: 0,
                        tokens: Vec::new(),
                        logprobs: Vec::new(),
                        reserved_blocks: need,
                    });
                }
            }
            let active: Vec<usize> = (0..slots.len()).filter(|&s| slots[s].is_some()).collect();
            if active.is_empty() {
                match pending.front() {
                    None => break,
                    Some(r) => {
                        // Open-loop idle: nothing active, wait for the
                        // next arrival. (With nothing active, reserved is
                        // zero and the head of queue always fits.)
                        let now = start.elapsed();
                        if r.arrival > now {
                            std::thread::sleep(r.arrival - now);
                        }
                        continue;
                    }
                }
            }
            // Build and broadcast the step plan.
            let entries: Vec<StepSlot> = active
                .iter()
                .map(|&s| {
                    let a = slots[s].as_ref().expect("slot is active");
                    let (tokens, pos0) = a.next_feed(prefill_chunk);
                    StepSlot {
                        slot: s,
                        tokens,
                        pos0,
                    }
                })
                .collect();
            let fed_now: Vec<usize> = entries.iter().map(|e| e.tokens.len()).collect();
            let plan = StepPlan {
                retire: std::mem::take(&mut retire),
                entries,
            };
            let step_start = Instant::now();
            for tx in &self.cmds {
                tx.send(Cmd::Step(plan.clone()))
                    .expect("device thread alive");
            }
            let choices = self.results.recv().expect("device thread alive");
            let step_dt = step_start.elapsed().as_secs_f64();
            run.steps += 1;
            run.occupancy_sum += active.len() as f64 / slots.len() as f64;
            // Account results: prefill steps (before the last prompt
            // token) discard the sample; from the step consuming the last
            // prompt token on, every step emits one generated token.
            for (k, &s) in active.iter().enumerate() {
                let a = slots[s].as_mut().expect("slot is active");
                a.fed += fed_now[k];
                if a.fed >= a.prompt.len() {
                    a.tokens.push(choices[k].token);
                    a.logprobs.push(choices[k].logprob);
                    run.latency.push(step_dt);
                }
                if a.done() {
                    let a = slots[s].take().expect("slot is active");
                    reserved -= a.reserved_blocks;
                    run.completions.push(Completion {
                        id: a.id,
                        tokens: a.tokens,
                        logprobs: a.logprobs,
                    });
                    retire.push(s);
                }
            }
        }
        // Release the last retirees' caches without running a step. A
        // retire-only plan is acked by *every* device, so when this
        // returns all ranks are quiescent and every KV block is back in
        // its pool (the arena counters are stable for callers to read).
        if !retire.is_empty() {
            let plan = StepPlan {
                retire,
                entries: Vec::new(),
            };
            for tx in &self.cmds {
                tx.send(Cmd::Step(plan.clone()))
                    .expect("device thread alive");
            }
            for _ in &self.cmds {
                let _ = self.results.recv().expect("device thread alive");
            }
        }
        run.wall = start.elapsed();
        run
    }

    /// Stops the device threads and joins them.
    ///
    /// # Panics
    ///
    /// Panics if a device thread panicked.
    pub fn shutdown(self) {
        for tx in &self.cmds {
            let _ = tx.send(Cmd::Stop);
        }
        for h in self.handles {
            h.join().expect("device thread panicked");
        }
    }
}

/// Everything one device thread owns.
struct DeviceState {
    rank: usize,
    world: usize,
    blocks: Vec<TransformerBlock>,
    input: InputShard,
    output: OutputShard,
    /// Positional embedding, stage 0 only (§6.4).
    pos: Option<Tensor>,
    partition: VocabPartition,
    /// `kv[slot][local_layer]`, all paging from one per-device pool.
    kv: Vec<Vec<KvCache>>,
    top_k: usize,
    /// Walk [`decode_pipeline_overlap`] (S submits, T merges) instead of
    /// [`decode_pipeline`] (S merges inline).
    overlap: bool,
    endpoint: P2pEndpoint,
    comm: Arc<Collective>,
    /// Communication stream for overlapped sampling barriers (§6.1).
    stream: CommStream,
}

impl DeviceState {
    fn run(mut self, rx: &Receiver<Cmd>, results: &Sender<Vec<TokenChoice>>) {
        while let Ok(Cmd::Step(plan)) = rx.recv() {
            let choices = self.step(&plan).expect("decode step failed");
            // Every rank merged identically; one report suffices — except
            // for retire-only plans, where each rank acks so the driver
            // can wait for full quiescence.
            if self.rank == 0 || plan.entries.is_empty() {
                let _ = results.send(choices);
            }
        }
    }

    /// Executes one decode step by walking this device's pass list of the
    /// validated forward-only schedule.
    fn step(&mut self, plan: &StepPlan) -> Result<Vec<TokenChoice>> {
        for &slot in &plan.retire {
            for kv in &mut self.kv[slot] {
                kv.release();
            }
        }
        let m = plan.entries.len();
        let mut choices = vec![
            TokenChoice {
                token: 0,
                logprob: 0.0,
            };
            m
        ];
        if m == 0 {
            // Retire-only plan; rank 0 still reports (empty) so the
            // driver's step/result pairing stays intact.
            return Ok(choices);
        }
        let schedule = if self.overlap {
            decode_pipeline_overlap(self.world, m as u32)
        } else {
            decode_pipeline(self.world, m as u32)
        };
        // Last-stage F outputs waiting for their S pass (this device only).
        let mut final_hidden: Vec<Option<Tensor>> = vec![None; m];
        // Stage-0 embedding rows owned locally, waiting for F.
        let mut local_embed: Vec<Option<Tensor>> = vec![None; m];
        // Overlap mode: in-flight sampling all_gathers, joined by T.
        let mut pending: Vec<Option<JobHandle<Vec<Vec<f32>>>>> = (0..m).map(|_| None).collect();
        let last = self.world - 1;
        for pass in schedule.passes(self.rank).to_vec() {
            let k = pass.microbatch as usize;
            let entry = &plan.entries[k];
            match pass.kind {
                PassKind::InputF => {
                    // Every shard owning tokens of the chunk embeds them
                    // (packed, in chunk order) and hands the rows to
                    // stage 0 (the TAG_INPART fan-in).
                    let owned: Vec<usize> = entry
                        .tokens
                        .iter()
                        .copied()
                        .filter(|&t| self.partition.owner_of(t) == Some(self.rank))
                        .collect();
                    if !owned.is_empty() {
                        let rows = self.input.forward_local(&owned)?;
                        if self.rank == 0 {
                            local_embed[k] = Some(rows);
                        } else {
                            self.endpoint
                                .send(
                                    0,
                                    to_packet(stage_tag(TAG_INPART, 0, pass.microbatch), &rows),
                                )
                                .map_err(|e| p2p_err(&e))?;
                        }
                    }
                }
                PassKind::F => {
                    let x = if self.rank == 0 {
                        self.assemble_chunk(entry, pass.microbatch, local_embed[k].take())?
                    } else {
                        crate::comm::from_packet(
                            &self
                                .endpoint
                                .recv_tag(
                                    self.rank - 1,
                                    stage_tag(TAG_ACT, self.rank, pass.microbatch),
                                )
                                .map_err(|e| p2p_err(&e))?,
                        )
                    };
                    let mut h = x;
                    for (li, block) in self.blocks.iter().enumerate() {
                        h = block.forward_decode(&h, &mut self.kv[entry.slot][li])?;
                    }
                    if self.rank < last {
                        self.endpoint
                            .send(
                                self.rank + 1,
                                to_packet(stage_tag(TAG_ACT, self.rank + 1, pass.microbatch), &h),
                            )
                            .map_err(|e| p2p_err(&e))?;
                    } else {
                        // Only the chunk's final token is sampled; C0 fans
                        // its hidden row out to every shard.
                        let tail = h.slice_rows(h.rows() - 1, h.rows())?;
                        for dst in 0..self.world {
                            if dst != self.rank {
                                self.endpoint
                                    .send(
                                        dst,
                                        to_packet(stage_tag(TAG_C0, 0, pass.microbatch), &tail),
                                    )
                                    .map_err(|e| p2p_err(&e))?;
                            }
                        }
                        final_hidden[k] = Some(tail);
                    }
                }
                PassKind::S => {
                    let h = match final_hidden[k].take() {
                        Some(h) => h,
                        None => crate::comm::from_packet(
                            &self
                                .endpoint
                                .recv_tag(last, stage_tag(TAG_C0, 0, pass.microbatch))
                                .map_err(|e| p2p_err(&e))?,
                        ),
                    };
                    let state = self.output.s_pass_decode(&h, self.top_k)?;
                    if self.overlap {
                        // Submit the single Algorithm-2 barrier to the
                        // communication stream and keep computing; the
                        // matching T pass joins it. Streams run jobs in
                        // submission order and every device's S passes
                        // ascend in k, so the per-rank collective calls
                        // stay aligned.
                        let payload = state.payload();
                        let comm = Arc::clone(&self.comm);
                        pending[k] = Some(self.stream.submit(move || comm.all_gather(&payload)));
                    } else {
                        let merged = self.output.barrier_decode(&self.comm, &state)?;
                        choices[k] = merged[0];
                    }
                }
                PassKind::T => {
                    // Overlap mode's deferred merge: join the stream job
                    // and run the deterministic merge every rank computes
                    // identically — bitwise the same as the inline path.
                    let gathered = pending[k]
                        .take()
                        .expect("schedule orders T after its own S")
                        .wait();
                    let merged = merge_decode(&gathered, 1, self.top_k)?;
                    choices[k] = merged[0];
                }
                other => unreachable!("decode schedule contains {other:?}"),
            }
        }
        Ok(choices)
    }

    /// Stage 0: reassembles a chunk's embedding rows from the per-owner
    /// `TAG_INPART` packets (receiving each distinct remote owner's packet
    /// lazily, once) and adds the positional rows.
    fn assemble_chunk(
        &mut self,
        entry: &StepSlot,
        microbatch: u32,
        local: Option<Tensor>,
    ) -> Result<Tensor> {
        let c = entry.tokens.len();
        let mut x = Tensor::zeros(c, self.input.hidden());
        // Per-owner packed rows with a cursor over rows already consumed.
        let mut packed: Vec<Option<(Tensor, usize)>> = (0..self.world).map(|_| None).collect();
        packed[0] = local.map(|rows| (rows, 0));
        for (r, &tok) in entry.tokens.iter().enumerate() {
            let owner = self
                .partition
                .owner_of(tok)
                .expect("token is in-vocabulary");
            if packed[owner].is_none() {
                let rows = crate::comm::from_packet(
                    &self
                        .endpoint
                        .recv_tag(owner, stage_tag(TAG_INPART, 0, microbatch))
                        .map_err(|e| p2p_err(&e))?,
                );
                packed[owner] = Some((rows, 0));
            }
            let (rows, cursor) = packed[owner].as_mut().expect("owner packet present");
            x.row_mut(r).copy_from_slice(rows.row(*cursor));
            *cursor += 1;
        }
        let pos = self.pos.as_ref().expect("stage 0 holds the positions");
        x.add(&pos.slice_rows(entry.pos0, entry.pos0 + c)?)
    }
}

fn p2p_err(e: &vp_collectives::P2pError) -> TensorError {
    TensorError::InvalidArgument(format!("p2p failed: {e}"))
}
