//! The forward-only decode engine: persistent per-device threads walking
//! [`decode_pipeline`] pass lists, with continuous batching driven from a
//! central admission loop.
//!
//! Each "device" thread hosts its pipeline stage's transformer blocks
//! (with one arena-backed [`KvCache`] per slot per hosted layer), its
//! vocabulary shard of the input embedding (Appendix C) and its shard of
//! the output layer. A decode step walks the forward-only §4.2 pass
//! structure for the active slots:
//!
//! * `InputF k` — the slot's token is embedded by the shard that owns it,
//!   which sends the row to stage 0 (the `TAG_INPART` fan-in training
//!   uses, collapsed to the single owning shard);
//! * `F k` — stage 0 adds the positional row, every stage runs its blocks
//!   through [`TransformerBlock::forward_decode`] against the slot's KV
//!   caches and forwards the activation (`TAG_ACT`); the last stage
//!   broadcasts the final hidden row to every shard (`C0`);
//! * `S k` — every shard computes its sharded logits, local softmax stats
//!   and local top-k, then meets in Algorithm 2's **single** barrier
//!   ([`OutputShard::barrier_decode`]): one `all_gather`, after which every
//!   rank merges and samples identically. No second round is needed.
//!
//! The pass list is the same one [`vp_check::check_decode`] verifies at
//! engine start, so the executed communication pattern is statically known
//! deadlock- and race-free before the first request arrives.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vp_collectives::{Collective, CollectiveGroup, P2pEndpoint, P2pNetwork};
use vp_core::InputShard;
use vp_core::{OutputShard, TokenChoice};
use vp_model::block::TransformerBlock;
use vp_model::partition::VocabPartition;
use vp_schedule::generators::decode_pipeline;
use vp_schedule::pass::PassKind;
use vp_tensor::nn::KvCache;
use vp_tensor::{Result, Tensor, TensorError};

use crate::comm::{stage_tag, to_packet, TAG_ACT, TAG_C0, TAG_INPART};
use crate::model::{FullModel, TinyConfig};
use crate::serve::workload::Request;

/// Configuration of the serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The model to serve. `seq_len` bounds the context window
    /// (prompt + generated tokens per request).
    pub model: TinyConfig,
    /// Pipeline devices (must divide `model.layers`).
    pub devices: usize,
    /// Continuous-batching slot count: requests concurrently in flight.
    pub max_batch: usize,
    /// Candidates each shard contributes to the sampling merge.
    pub top_k: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            model: TinyConfig::default(),
            devices: 2,
            max_batch: 4,
            top_k: 4,
        }
    }
}

/// One slot's work in a decode step.
#[derive(Debug, Clone)]
struct StepSlot {
    /// Slot index (selects the KV caches).
    slot: usize,
    /// Token fed at this step (prompt token during prefill, the previous
    /// sample during generation).
    token: usize,
    /// Position of `token` in the slot's context.
    pos: usize,
}

/// One decode step's plan, broadcast to every device thread.
#[derive(Debug, Clone)]
struct StepPlan {
    /// Slots whose caches must be released before the step runs (their
    /// request retired after the previous step).
    retire: Vec<usize>,
    /// Active entries; index = the schedule's microbatch id.
    entries: Vec<StepSlot>,
}

enum Cmd {
    Step(StepPlan),
    Stop,
}

/// A finished request: the tokens it generated and their log-probs.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: usize,
    /// Greedy-decoded tokens, `output_len` of them.
    pub tokens: Vec<usize>,
    /// Per-token log-probabilities under the global softmax.
    pub logprobs: Vec<f32>,
}

/// Measurements of one [`ServeEngine::serve`] run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Every finished request, in completion order.
    pub completions: Vec<Completion>,
    /// Decode steps executed.
    pub steps: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Wall time of the decode step that produced each generated token,
    /// in seconds (the per-token latency distribution).
    pub latency: Vec<f64>,
    /// Sum over steps of `active slots / max_batch`; divide by `steps`
    /// for mean batch occupancy.
    pub occupancy_sum: f64,
}

impl ServeRun {
    /// Total generated tokens.
    pub fn tokens(&self) -> usize {
        self.completions.iter().map(|c| c.tokens.len()).sum()
    }

    /// Generated tokens per wall-clock second.
    pub fn tokens_per_sec(&self) -> f64 {
        self.tokens() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Mean batch occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occupancy_sum / self.steps as f64
        }
    }

    /// The `q`-quantile (0..=1) of the per-token latency in seconds, by
    /// the nearest-rank method; `0.0` when no tokens were generated.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latency.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// A request occupying a slot.
struct Active {
    id: usize,
    prompt: Vec<usize>,
    output_len: usize,
    /// Tokens fed so far (prompt progress + generated count).
    fed: usize,
    tokens: Vec<usize>,
    logprobs: Vec<f32>,
}

impl Active {
    /// The token to feed next and its position.
    fn next_feed(&self) -> (usize, usize) {
        let tok = if self.fed < self.prompt.len() {
            self.prompt[self.fed]
        } else {
            *self.tokens.last().expect("past prefill ⇒ generated ≥ 1")
        };
        (tok, self.fed)
    }

    fn done(&self) -> bool {
        self.tokens.len() >= self.output_len
    }
}

/// The serving engine: `p` persistent device threads plus this driver.
pub struct ServeEngine {
    config: ServeConfig,
    cmds: Vec<Sender<Cmd>>,
    results: Receiver<Vec<TokenChoice>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds the sharded model, statically verifies the decode pass list
    /// for every possible batch size, and spawns the device threads.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on an invalid
    /// configuration (zero devices/slots, indivisible layers, a decode
    /// schedule that fails [`vp_check::check_decode`]).
    ///
    /// # Panics
    ///
    /// Panics if a device thread dies (a bug, not an input condition).
    pub fn start(config: ServeConfig) -> Result<Self> {
        let p = config.devices;
        if p == 0 || config.max_batch == 0 || config.top_k == 0 {
            return Err(TensorError::InvalidArgument(
                "devices, max_batch and top_k must all be nonzero".into(),
            ));
        }
        if !config.model.layers.is_multiple_of(p) {
            return Err(TensorError::InvalidArgument(format!(
                "{} layers do not divide over {p} devices",
                config.model.layers
            )));
        }
        // Every batch size the driver can submit must be statically clean.
        for m in 1..=config.max_batch {
            let report = vp_check::check_decode(&decode_pipeline(p, m as u32));
            if !report.is_clean() {
                return Err(TensorError::InvalidArgument(format!(
                    "decode schedule (p={p}, m={m}) failed vp-check: {:?}",
                    report.codes()
                )));
            }
        }
        let full = FullModel::build(&config.model);
        let partition = VocabPartition::new(config.model.vocab, p);
        let endpoints = P2pNetwork::new(p);
        let comms = CollectiveGroup::new(p);
        let (res_tx, res_rx) = channel();
        let mut cmds = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (endpoint, comm) in endpoints.into_iter().zip(comms) {
            let rank = comm.rank();
            let (tx, rx) = channel();
            cmds.push(tx);
            let (b0, b1) = full.stage_blocks(rank, p);
            let device = DeviceState {
                rank,
                world: p,
                blocks: full.blocks[b0..b1].to_vec(),
                input: InputShard::from_full(&full.input_weight, partition, rank)
                    .expect("partition matches the weight"),
                output: OutputShard::from_full(&full.output_weight, partition, rank)
                    .expect("partition matches the weight"),
                pos: (rank == 0).then(|| full.pos_weight.clone()),
                partition,
                kv: (0..config.max_batch)
                    .map(|_| {
                        (0..b1 - b0)
                            .map(|_| KvCache::new(config.model.hidden))
                            .collect()
                    })
                    .collect(),
                top_k: config.top_k,
                endpoint,
                comm,
            };
            let res_tx = res_tx.clone();
            handles.push(std::thread::spawn(move || device.run(&rx, &res_tx)));
        }
        Ok(ServeEngine {
            config,
            cmds,
            results: res_rx,
            handles,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves a request stream with continuous batching and returns the
    /// run's completions and measurements.
    ///
    /// Requests are admitted into free slots once their arrival time has
    /// passed (open-loop; closed-loop streams have all arrivals at zero
    /// and admission is limited only by free slots). Prefill feeds prompt
    /// tokens through the same decode path one step at a time; retired
    /// requests release their KV caches back to the buffer arena before
    /// the next step touches the slot.
    ///
    /// # Panics
    ///
    /// Panics if a request's context exceeds the model's `seq_len`, or if
    /// a device thread died.
    pub fn serve(&mut self, requests: &[Request]) -> ServeRun {
        let seq_len = self.config.model.seq_len;
        for r in requests {
            assert!(
                r.prompt.len() + r.output_len <= seq_len,
                "request {} needs {} positions, model has {seq_len}",
                r.id,
                r.prompt.len() + r.output_len
            );
            assert!(!r.prompt.is_empty(), "request {} has an empty prompt", r.id);
        }
        let mut pending: VecDeque<&Request> = requests.iter().collect();
        let mut slots: Vec<Option<Active>> = (0..self.config.max_batch).map(|_| None).collect();
        let mut retire: Vec<usize> = Vec::new();
        let mut run = ServeRun {
            completions: Vec::new(),
            steps: 0,
            wall: Duration::ZERO,
            latency: Vec::new(),
            occupancy_sum: 0.0,
        };
        let start = Instant::now();
        loop {
            // Admission: next arrived request into each free slot.
            let now = start.elapsed();
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    let arrived = pending.front().is_some_and(|r| r.arrival <= now);
                    if arrived {
                        let r = pending.pop_front().expect("front just checked");
                        *slot = Some(Active {
                            id: r.id,
                            prompt: r.prompt.clone(),
                            output_len: r.output_len,
                            fed: 0,
                            tokens: Vec::new(),
                            logprobs: Vec::new(),
                        });
                    }
                }
            }
            let active: Vec<usize> = (0..slots.len()).filter(|&s| slots[s].is_some()).collect();
            if active.is_empty() {
                match pending.front() {
                    None => break,
                    Some(r) => {
                        // Open-loop idle: nothing active, wait for the
                        // next arrival.
                        let now = start.elapsed();
                        if r.arrival > now {
                            std::thread::sleep(r.arrival - now);
                        }
                        continue;
                    }
                }
            }
            // Build and broadcast the step plan.
            let entries: Vec<StepSlot> = active
                .iter()
                .map(|&s| {
                    let a = slots[s].as_ref().expect("slot is active");
                    let (token, pos) = a.next_feed();
                    StepSlot {
                        slot: s,
                        token,
                        pos,
                    }
                })
                .collect();
            let plan = StepPlan {
                retire: std::mem::take(&mut retire),
                entries,
            };
            let step_start = Instant::now();
            for tx in &self.cmds {
                tx.send(Cmd::Step(plan.clone()))
                    .expect("device thread alive");
            }
            let choices = self.results.recv().expect("device thread alive");
            let step_dt = step_start.elapsed().as_secs_f64();
            run.steps += 1;
            run.occupancy_sum += active.len() as f64 / slots.len() as f64;
            // Account results: prefill steps (before the last prompt
            // token) discard the sample; from the last prompt token on,
            // every step emits one generated token.
            for (k, &s) in active.iter().enumerate() {
                let a = slots[s].as_mut().expect("slot is active");
                a.fed += 1;
                if a.fed >= a.prompt.len() {
                    a.tokens.push(choices[k].token);
                    a.logprobs.push(choices[k].logprob);
                    run.latency.push(step_dt);
                }
                if a.done() {
                    let a = slots[s].take().expect("slot is active");
                    run.completions.push(Completion {
                        id: a.id,
                        tokens: a.tokens,
                        logprobs: a.logprobs,
                    });
                    retire.push(s);
                }
            }
        }
        // Release the last retirees' caches without running a step.
        if !retire.is_empty() {
            let plan = StepPlan {
                retire,
                entries: Vec::new(),
            };
            for tx in &self.cmds {
                tx.send(Cmd::Step(plan.clone()))
                    .expect("device thread alive");
            }
            let _ = self.results.recv().expect("device thread alive");
        }
        run.wall = start.elapsed();
        run
    }

    /// Stops the device threads and joins them.
    ///
    /// # Panics
    ///
    /// Panics if a device thread panicked.
    pub fn shutdown(self) {
        for tx in &self.cmds {
            let _ = tx.send(Cmd::Stop);
        }
        for h in self.handles {
            h.join().expect("device thread panicked");
        }
    }
}

/// Everything one device thread owns.
struct DeviceState {
    rank: usize,
    world: usize,
    blocks: Vec<TransformerBlock>,
    input: InputShard,
    output: OutputShard,
    /// Positional embedding, stage 0 only (§6.4).
    pos: Option<Tensor>,
    partition: VocabPartition,
    /// `kv[slot][local_layer]`.
    kv: Vec<Vec<KvCache>>,
    top_k: usize,
    endpoint: P2pEndpoint,
    comm: Collective,
}

impl DeviceState {
    fn run(mut self, rx: &Receiver<Cmd>, results: &Sender<Vec<TokenChoice>>) {
        while let Ok(Cmd::Step(plan)) = rx.recv() {
            let choices = self.step(&plan).expect("decode step failed");
            if self.rank == 0 {
                // Every rank merged identically; one report suffices.
                let _ = results.send(choices);
            }
        }
    }

    /// Executes one decode step by walking this device's pass list of the
    /// validated forward-only schedule.
    fn step(&mut self, plan: &StepPlan) -> Result<Vec<TokenChoice>> {
        for &slot in &plan.retire {
            for kv in &mut self.kv[slot] {
                kv.release();
            }
        }
        let m = plan.entries.len();
        let mut choices = vec![
            TokenChoice {
                token: 0,
                logprob: 0.0,
            };
            m
        ];
        if m == 0 {
            // Retire-only plan; rank 0 still reports (empty) so the
            // driver's step/result pairing stays intact.
            return Ok(choices);
        }
        let schedule = decode_pipeline(self.world, m as u32);
        // Last-stage F outputs waiting for their S pass (this device only).
        let mut final_hidden: Vec<Option<Tensor>> = vec![None; m];
        // Stage-0 embedding rows owned locally, waiting for F.
        let mut local_embed: Vec<Option<Tensor>> = vec![None; m];
        let last = self.world - 1;
        for pass in schedule.passes(self.rank).to_vec() {
            let k = pass.microbatch as usize;
            let entry = &plan.entries[k];
            match pass.kind {
                PassKind::InputF => {
                    // The owning shard embeds the token and hands the row
                    // to stage 0 (degenerate TAG_INPART fan-in).
                    if self.partition.owner_of(entry.token) == Some(self.rank) {
                        let row = self.input.forward_local(&[entry.token])?;
                        if self.rank == 0 {
                            local_embed[k] = Some(row);
                        } else {
                            self.endpoint
                                .send(
                                    0,
                                    to_packet(stage_tag(TAG_INPART, 0, pass.microbatch), &row),
                                )
                                .map_err(|e| p2p_err(&e))?;
                        }
                    }
                }
                PassKind::F => {
                    let x = if self.rank == 0 {
                        let embedded = match local_embed[k].take() {
                            Some(row) => row,
                            None => {
                                let owner = self
                                    .partition
                                    .owner_of(entry.token)
                                    .expect("token is in-vocabulary");
                                crate::comm::from_packet(
                                    self.endpoint
                                        .recv_tag(owner, stage_tag(TAG_INPART, 0, pass.microbatch))
                                        .map_err(|e| p2p_err(&e))?,
                                )
                            }
                        };
                        let pos = self.pos.as_ref().expect("stage 0 holds the positions");
                        embedded.add(&pos.slice_rows(entry.pos, entry.pos + 1)?)?
                    } else {
                        crate::comm::from_packet(
                            self.endpoint
                                .recv_tag(
                                    self.rank - 1,
                                    stage_tag(TAG_ACT, self.rank, pass.microbatch),
                                )
                                .map_err(|e| p2p_err(&e))?,
                        )
                    };
                    let mut h = x;
                    for (li, block) in self.blocks.iter().enumerate() {
                        h = block.forward_decode(&h, &mut self.kv[entry.slot][li])?;
                    }
                    if self.rank < last {
                        self.endpoint
                            .send(
                                self.rank + 1,
                                to_packet(stage_tag(TAG_ACT, self.rank + 1, pass.microbatch), &h),
                            )
                            .map_err(|e| p2p_err(&e))?;
                    } else {
                        // C0: fan the final hidden row out to every shard.
                        for dst in 0..self.world {
                            if dst != self.rank {
                                self.endpoint
                                    .send(dst, to_packet(stage_tag(TAG_C0, 0, pass.microbatch), &h))
                                    .map_err(|e| p2p_err(&e))?;
                            }
                        }
                        final_hidden[k] = Some(h);
                    }
                }
                PassKind::S => {
                    let h = match final_hidden[k].take() {
                        Some(h) => h,
                        None => crate::comm::from_packet(
                            self.endpoint
                                .recv_tag(last, stage_tag(TAG_C0, 0, pass.microbatch))
                                .map_err(|e| p2p_err(&e))?,
                        ),
                    };
                    let state = self.output.s_pass_decode(&h, self.top_k)?;
                    let merged = self.output.barrier_decode(&self.comm, &state)?;
                    choices[k] = merged[0];
                }
                other => unreachable!("decode schedule contains {other:?}"),
            }
        }
        Ok(choices)
    }
}

fn p2p_err(e: &vp_collectives::P2pError) -> TensorError {
    TensorError::InvalidArgument(format!("p2p failed: {e}"))
}
