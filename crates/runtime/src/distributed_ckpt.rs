//! Distributed checkpointing for the pipelined trainer: every device
//! serializes its own shard (transformer chunks, vocabulary shards, Adam
//! moments), and a run restores from the shard set and the completed
//! iteration count — resuming bit-identically, which the tests verify
//! against an uninterrupted run.

use crate::data::{DataSource, Microbatch};
use crate::engine::{check_schedule, device_loop, DeviceOutcome, TpEnv};
use crate::model::TinyConfig;
use crate::pipeline::{build_schedule, Mode, ScheduleFamily};
use std::time::Instant;
use vp_collectives::{Collective, CollectiveGroup, P2pNetwork};
use vp_tensor::{Result, TensorError};

/// A distributed checkpoint: one opaque shard per pipeline device plus the
/// completed iteration count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineCheckpoint {
    /// Per-device serialized state, indexed by pipeline rank.
    pub shards: Vec<Vec<u8>>,
    /// Iterations completed when the checkpoint was taken.
    pub iterations_done: u64,
}

impl PipelineCheckpoint {
    /// Total bytes across all shards.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

/// Trains for `iterations`, optionally resuming from `checkpoint`, and
/// returns the losses together with an end-of-run [`PipelineCheckpoint`].
///
/// # Errors
///
/// Returns an error for invalid configurations or mismatched checkpoints,
/// as in [`crate::pipeline::train_pipeline_with`].
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_checkpointed(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    corpus: &DataSource,
    checkpoint: Option<&PipelineCheckpoint>,
) -> Result<(Vec<f64>, PipelineCheckpoint)> {
    if let Some(ckpt) = checkpoint {
        if ckpt.shards.len() != devices {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint has {} shards for {} devices",
                ckpt.shards.len(),
                devices
            )));
        }
    }
    let schedule = build_schedule(mode, family, devices, config.microbatches as u32)?;
    let schedule = &schedule;
    check_schedule(config, schedule)?;
    let epoch = Instant::now();
    let endpoints = P2pNetwork::new(devices);
    let c1_comms: Vec<Collective> = CollectiveGroup::new(devices);
    let iterations_done = checkpoint.map(|c| c.iterations_done).unwrap_or(0);
    let results: Vec<Result<DeviceOutcome>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (endpoint, comm) in endpoints.into_iter().zip(c1_comms) {
            let rank = endpoint.rank();
            let corpus = corpus.clone();
            let restore = checkpoint.map(|c| (c.shards[rank].as_slice(), c.iterations_done));
            joins.push(scope.spawn(move || {
                let select =
                    move |iter: u64, m: usize| -> Vec<Microbatch> { corpus.iteration(iter, m) };
                device_loop(
                    config,
                    schedule,
                    iterations,
                    rank,
                    endpoint,
                    comm,
                    TpEnv::solo(),
                    None,
                    &select,
                    restore,
                    &vp_trace::Tracer::off(),
                    epoch,
                )
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("device thread panicked"))
            .collect()
    });
    let mut losses = Vec::new();
    let mut shards = Vec::with_capacity(devices);
    for r in results {
        let outcome = r?;
        if !outcome.losses.is_empty() {
            losses = outcome.losses;
        }
        shards.push(outcome.shard);
    }
    Ok((
        losses,
        PipelineCheckpoint {
            shards,
            iterations_done: iterations_done + iterations as u64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;
    use vp_core::VocabAlgo;

    fn source(config: &TinyConfig) -> DataSource {
        DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ))
    }

    fn run_split(mode: Mode, family: ScheduleFamily, devices: usize) {
        let config = TinyConfig::default();
        let src = source(&config);
        // Straight run.
        let (full, _) =
            train_pipeline_checkpointed(&config, devices, mode, family, 6, &src, None).unwrap();
        // Interrupted run: 3 iterations, checkpoint, restore, 3 more.
        let (head, ckpt) =
            train_pipeline_checkpointed(&config, devices, mode, family, 3, &src, None).unwrap();
        assert_eq!(ckpt.iterations_done, 3);
        assert!(ckpt.total_bytes() > 0);
        let (tail, ckpt2) =
            train_pipeline_checkpointed(&config, devices, mode, family, 3, &src, Some(&ckpt))
                .unwrap();
        assert_eq!(ckpt2.iterations_done, 6);
        let stitched: Vec<f64> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, full, "{mode:?}/{family:?}: resume must be exact");
    }

    #[test]
    fn vocab_pipeline_checkpoint_resumes_exactly() {
        run_split(Mode::Vocab(VocabAlgo::Alg2), ScheduleFamily::OneFOneB, 2);
    }

    #[test]
    fn baseline_pipeline_checkpoint_resumes_exactly() {
        run_split(Mode::Baseline, ScheduleFamily::OneFOneB, 4);
    }

    #[test]
    fn vhalf_pipeline_checkpoint_resumes_exactly() {
        run_split(Mode::Vocab(VocabAlgo::Alg1), ScheduleFamily::VHalf, 2);
    }

    #[test]
    fn mismatched_shard_count_rejected() {
        let config = TinyConfig::default();
        let src = source(&config);
        let (_, ckpt) = train_pipeline_checkpointed(
            &config,
            2,
            Mode::Baseline,
            ScheduleFamily::OneFOneB,
            1,
            &src,
            None,
        )
        .unwrap();
        let err = train_pipeline_checkpointed(
            &config,
            4,
            Mode::Baseline,
            ScheduleFamily::OneFOneB,
            1,
            &src,
            Some(&ckpt),
        )
        .unwrap_err();
        assert!(err.to_string().contains("shards"));
    }
}
