//! Communication plumbing of the schedule interpreter: point-to-point tag
//! spaces, tensor↔packet conversion, and the virtual-stage geometry shared
//! by all pass handlers.
//!
//! The tag layout mirrors §6.1's channel separation:
//!
//! * stage-boundary activations ([`TAG_ACT`]) and gradients ([`TAG_GRAD`])
//!   carry the destination virtual stage in bits 24.., so a device hosting
//!   several chunks can demultiplex V-shape or round-robin traffic;
//! * `C0` ([`TAG_C0`]) is the broadcast of the last virtual stage's output
//!   to every vocabulary shard;
//! * `C2` ([`TAG_C2`]) is Algorithm 1's `∇X` fan-in back to the last
//!   stage's device;
//! * the sharded input layer uses [`TAG_INPART`] (partial-embedding fan-in
//!   to the first virtual stage) and [`TAG_INGRAD`] (embedding-gradient
//!   fan-out back to the shards).

use vp_collectives::Packet;
use vp_schedule::pass::{placement_device_of, placement_stage_of, ChunkPlacement};
use vp_tensor::Tensor;

/// Stage-boundary activation traffic.
pub(crate) const TAG_ACT: u64 = 1 << 40;
/// Stage-boundary gradient traffic.
pub(crate) const TAG_GRAD: u64 = 2 << 40;
/// `C0`: last-stage output broadcast to all vocabulary shards.
pub(crate) const TAG_C0: u64 = 3 << 40;
/// `C2`: Algorithm 1's partial-`∇X` fan-in.
pub(crate) const TAG_C2: u64 = 4 << 40;
/// Sharded input layer: partial-embedding fan-in.
pub(crate) const TAG_INPART: u64 = 5 << 40;
/// Sharded input layer: embedding-gradient fan-out.
pub(crate) const TAG_INGRAD: u64 = 6 << 40;

/// Composes a boundary-traffic tag: channel base, destination virtual
/// stage (bits 24..) and microbatch index (low bits).
pub(crate) fn stage_tag(base: u64, vs: usize, k: u32) -> u64 {
    base | ((vs as u64) << 24) | k as u64
}

/// Wraps a tensor into a tagged packet.
pub(crate) fn to_packet(tag: u64, t: &Tensor) -> Packet {
    Packet::new(tag, t.rows(), t.cols(), t.data().to_vec())
}

/// Unwraps a packet back into a tensor.
///
/// The payload is copied into an arena-managed buffer rather than wrapped
/// directly: the tensor's drop path releases into the arena, so wrapping
/// the packet's own (never-taken) vec would over-count releases and let
/// `taken − released` saturate to zero — masking genuine KV leaks on any
/// world with p2p traffic while single-device runs report them honestly.
pub(crate) fn from_packet(p: &Packet) -> Tensor {
    Tensor::from_vec(p.rows, p.cols, vp_tensor::alloc::take_copy(&p.data))
        .expect("packet carries a consistent shape")
}

/// Virtual-stage geometry shared by all pass handlers: how many devices
/// and chunks the schedule spans and how virtual stages map onto
/// `(device, chunk)` pairs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageMap {
    pub(crate) devices: usize,
    pub(crate) chunks: u8,
    pub(crate) placement: ChunkPlacement,
}

impl StageMap {
    /// The index of the last virtual stage (which hosts the output layer
    /// in baseline mode and roots the `C0` broadcast in vocab mode).
    pub(crate) fn last_vs(&self) -> usize {
        self.devices * self.chunks as usize - 1
    }

    /// Maps a virtual stage to its `(device, chunk)` pair.
    pub(crate) fn device_of(&self, vs: usize) -> (usize, u8) {
        placement_device_of(self.placement, self.devices, vs)
    }

    /// Maps a `(device, chunk)` pair back to its virtual stage.
    pub(crate) fn vs_of(&self, device: usize, chunk: u8) -> usize {
        placement_stage_of(self.placement, self.devices, device, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_disjoint_across_channels() {
        let bases = [TAG_ACT, TAG_GRAD, TAG_C0, TAG_C2, TAG_INPART, TAG_INGRAD];
        for (i, &a) in bases.iter().enumerate() {
            for &b in &bases[i + 1..] {
                // Maximal stage/microbatch payloads never collide across bases.
                assert_ne!(
                    stage_tag(a, (1 << 16) - 1, u32::MAX >> 8),
                    stage_tag(b, 0, 0)
                );
            }
        }
    }

    #[test]
    fn stage_map_round_trips_both_placements() {
        for placement in [ChunkPlacement::VShape, ChunkPlacement::RoundRobin] {
            let map = StageMap {
                devices: 4,
                chunks: 2,
                placement,
            };
            assert_eq!(map.last_vs(), 7);
            for vs in 0..8 {
                let (d, c) = map.device_of(vs);
                assert_eq!(map.vs_of(d, c), vs, "{placement:?} vs {vs}");
            }
        }
    }

    #[test]
    fn packets_round_trip_tensors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let p = to_packet(7, &t);
        assert_eq!(p.tag, 7);
        let back = from_packet(&p);
        assert_eq!(back.data(), t.data());
        assert_eq!((back.rows(), back.cols()), (2, 3));
    }
}
