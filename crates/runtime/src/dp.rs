//! Data-parallel composition: `dp` replicas of the pipeline train on
//! disjoint microbatch shards and sum their gradients before each
//! optimizer step.
//!
//! The paper's experiments use pure pipeline parallelism and argue the
//! method "is orthogonal to tensor and data parallelism" (§6.2); this
//! module demonstrates the data-parallel half of that claim executably:
//! a `dp × p` grid of devices where each pipeline group runs the same
//! vocabulary-parallel schedule on every `dp`-th microbatch, and each
//! stage's replicas all-reduce their parameter gradients (including the
//! vocabulary shards) at the end of the iteration. With sum-reduction the
//! run is numerically equivalent to a single pipeline over all
//! microbatches — which the tests check against the single-device
//! reference.

use crate::data::{DataSource, Microbatch};
use crate::engine::{check_schedule, device_loop, DeviceOutcome, TpEnv};
use crate::model::TinyConfig;
use crate::pipeline::{build_schedule, Mode, ScheduleFamily};
use std::time::Instant;
use vp_collectives::{Collective, CollectiveGroup, P2pNetwork};
use vp_tensor::{Result, TensorError};

/// Trains with `dp` data-parallel pipeline replicas of `devices` stages
/// each, returning the per-iteration mean loss over the *global* batch.
///
/// `config.microbatches` is the global microbatch count; it must divide by
/// `dp` (each replica runs `microbatches / dp` per iteration).
///
/// # Errors
///
/// Returns an error for invalid configurations, as in
/// [`crate::pipeline::train_pipeline_with`].
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_dp(
    config: &TinyConfig,
    devices: usize,
    dp: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    corpus: &DataSource,
) -> Result<Vec<f64>> {
    if dp == 0 || !config.microbatches.is_multiple_of(dp) {
        return Err(TensorError::InvalidArgument(format!(
            "{} microbatches not divisible by {} data-parallel groups",
            config.microbatches, dp
        )));
    }
    // One point-to-point network and C1 group per pipeline replica; one
    // gradient-sync group per pipeline stage (its dp replicas).
    let mut p2p_per_group: Vec<Vec<_>> = (0..dp).map(|_| P2pNetwork::new(devices)).collect();
    let mut c1_per_group: Vec<Vec<Collective>> =
        (0..dp).map(|_| CollectiveGroup::new(devices)).collect();
    let mut dp_per_stage: Vec<Vec<Collective>> =
        (0..devices).map(|_| CollectiveGroup::new(dp)).collect();

    let local_config = TinyConfig {
        microbatches: config.microbatches / dp,
        ..config.clone()
    };
    // Every replica interprets the same schedule; build and validate it
    // once and share it into the device threads.
    let schedule = build_schedule(mode, family, devices, local_config.microbatches as u32)?;
    let schedule = &schedule;
    check_schedule(&local_config, schedule)?;
    let epoch = Instant::now();
    let results: Vec<Result<DeviceOutcome>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for group in (0..dp).rev() {
            for rank in (0..devices).rev() {
                let endpoint = p2p_per_group[group].pop().expect("one endpoint per rank");
                let c1 = c1_per_group[group].pop().expect("one c1 handle per rank");
                let dp_comm = dp_per_stage[rank].pop().expect("one dp handle per replica");
                debug_assert_eq!(endpoint.rank(), rank);
                let local_config = local_config.clone();
                let corpus = corpus.clone();
                joins.push(scope.spawn(move || {
                    // Replica `group` takes global microbatches
                    // k·dp + group.
                    let select = move |iter: u64, m: usize| -> Vec<Microbatch> {
                        let global = corpus.iteration(iter, m * dp);
                        global.into_iter().skip(group).step_by(dp).collect()
                    };
                    device_loop(
                        &local_config,
                        schedule,
                        iterations,
                        rank,
                        endpoint,
                        c1,
                        TpEnv::solo(),
                        Some(&(dp_comm, dp)),
                        &select,
                        None,
                        &vp_trace::Tracer::off(),
                        epoch,
                    )
                }));
            }
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("device thread panicked"))
            .collect()
    });

    // Threads were spawned in reverse (group, rank) order; the group-0
    // reporter's losses are the global means (the loss all-reduce inside
    // the device loop already aggregated across replicas).
    let mut losses = Vec::new();
    for r in results {
        let outcome = r?;
        if !outcome.losses.is_empty() {
            losses = outcome.losses;
        }
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;
    use crate::reference::train_reference;
    use vp_core::VocabAlgo;

    fn source(config: &TinyConfig) -> DataSource {
        DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ))
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs()),
                "iteration {i}: {x} vs {y}"
            );
        }
    }

    /// The orthogonality claim, executably: dp=2 replicas of a 2-stage
    /// vocabulary-parallel pipeline match the single-device reference over
    /// the same global batch.
    #[test]
    fn dp_vocab_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 5).unwrap();
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let dp_run = train_pipeline_dp(
                &config,
                2,
                2,
                Mode::Vocab(algo),
                ScheduleFamily::OneFOneB,
                5,
                &source(&config),
            )
            .unwrap();
            assert_close(&reference, &dp_run, 1e-3);
        }
    }

    #[test]
    fn dp_baseline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 4).unwrap();
        let dp_run = train_pipeline_dp(
            &config,
            2,
            2,
            Mode::Baseline,
            ScheduleFamily::OneFOneB,
            4,
            &source(&config),
        )
        .unwrap();
        assert_close(&reference, &dp_run, 1e-3);
    }

    #[test]
    fn dp_equals_single_group() {
        let config = TinyConfig::default();
        let single = train_pipeline_dp(
            &config,
            2,
            1,
            Mode::Vocab(VocabAlgo::Alg2),
            ScheduleFamily::OneFOneB,
            4,
            &source(&config),
        )
        .unwrap();
        let double = train_pipeline_dp(
            &config,
            2,
            2,
            Mode::Vocab(VocabAlgo::Alg2),
            ScheduleFamily::OneFOneB,
            4,
            &source(&config),
        )
        .unwrap();
        assert_close(&single, &double, 1e-3);
    }

    #[test]
    fn indivisible_microbatches_rejected() {
        let config = TinyConfig::default(); // 4 microbatches
        let err = train_pipeline_dp(
            &config,
            2,
            3,
            Mode::Baseline,
            ScheduleFamily::OneFOneB,
            1,
            &source(&config),
        )
        .unwrap_err();
        assert!(err.to_string().contains("divisible"));
    }
}
