//! 2D grid execution: pipeline parallelism × Megatron-style tensor
//! parallelism, composed exactly as PTD-P composes them (Narayanan et al.
//! 2021) and as the paper's §6.2 measured configurations do.
//!
//! A [`DeviceGrid`] of `pp × tp` entries spawns one interpreter thread per
//! entry. Each grid *column* (fixed `tp_rank`) is a complete pipeline: it
//! runs the schedule's pass lists verbatim, including the vocabulary
//! `S`/`T` passes and their `C0`/`C1`/`C2` traffic, over a column-private
//! p2p network slice and `C1` communicator. Each grid *row* (one pipeline
//! stage) shards its transformer blocks column-/row-wise over the TP axis
//! and rendezvouses in the `f`/`g` conjugate collectives
//! ([`TpSyncStyle::AllReduce`], or [`TpSyncStyle::Psa`] for the
//! reduce-scatter + all-gather decomposition).
//!
//! Because every TP collective hands all row members the identical full
//! activation, the columns are bitwise replicas of each other: the
//! vocabulary shards, positional embedding and LayerNorms evolve
//! identically in every column (which the tied-embedding test pins), and
//! the `tp = 1` grid is bitwise the flat pipeline of [`train_schedule`].
//!
//! [`train_schedule`]: crate::engine::train_schedule

use crate::data::{DataSource, Microbatch};
use crate::engine::{
    assemble_iter_wall, assemble_report, check_schedule, device_loop, DeviceOutcome, TpEnv,
    TrainReport,
};
use crate::model::TinyConfig;
use std::sync::Arc;
use std::time::Instant;
use vp_collectives::{Collective, CollectiveGroup, P2pNetwork};
use vp_model::TpSyncStyle;
use vp_schedule::grid::DeviceGrid;
use vp_schedule::pass::Schedule;
use vp_tensor::{Result, TensorError};

/// Trains the tiny model on a `pp × tp` device grid: the schedule runs on
/// the pipeline axis (its device count must equal `grid.pp()`), and every
/// stage's transformer blocks are sharded over the `tp` tensor ranks of
/// its grid row, synchronized by `sync`.
///
/// With `tp = 1` this is bitwise identical to
/// [`crate::engine::train_schedule`]; with `tp > 1` the loss trajectory
/// matches the single-device reference within the same tolerance as the
/// flat pipeline (and [`TpSyncStyle::Psa`] is bitwise equal to
/// [`TpSyncStyle::AllReduce`], since both sum shards in rank order).
///
/// # Errors
///
/// Returns an error for invalid `(config, schedule)` pairs (as in
/// [`crate::engine::train_schedule`]), a schedule/grid pipeline-depth
/// mismatch, or a TP width that does not divide the head count and FFN
/// width (shards are head-aligned).
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_schedule_grid(
    config: &TinyConfig,
    schedule: &Schedule,
    grid: DeviceGrid,
    sync: TpSyncStyle,
    iterations: usize,
    corpus: &DataSource,
) -> Result<TrainReport> {
    run_grid(config, schedule, grid, sync, iterations, corpus).map(|(report, _)| report)
}

/// The grid runner behind [`train_schedule_grid`]: also hands back the raw
/// per-device outcomes (indexed by global rank) so tests can inspect
/// checkpoint shards across a TP row.
pub(crate) fn run_grid(
    config: &TinyConfig,
    schedule: &Schedule,
    grid: DeviceGrid,
    sync: TpSyncStyle,
    iterations: usize,
    corpus: &DataSource,
) -> Result<(TrainReport, Vec<DeviceOutcome>)> {
    check_schedule(config, schedule)?;
    if schedule.devices() != grid.pp() {
        return Err(TensorError::InvalidArgument(format!(
            "schedule spans {} devices but the grid's pipeline depth is {}",
            schedule.devices(),
            grid.pp()
        )));
    }
    let (pp, tp) = (grid.pp(), grid.tp());
    let ffn = config.hidden * config.ffn_mult;
    if !config.heads.is_multiple_of(tp) || !ffn.is_multiple_of(tp) {
        return Err(TensorError::InvalidArgument(format!(
            "tp {} must divide the head count {} and the FFN width {ffn} (head-aligned shards)",
            tp, config.heads
        )));
    }
    let endpoints = P2pNetwork::new(grid.devices());
    // One C1 communicator per grid column (a full pipeline), one row
    // communicator per stage (its tp shards) — the explicit process groups
    // of `DeviceGrid::{pp_groups, tp_groups}`.
    let mut c1_per_column: Vec<Vec<Option<Collective>>> = (0..tp)
        .map(|_| CollectiveGroup::new(pp).into_iter().map(Some).collect())
        .collect();
    let mut row_comms: Vec<Vec<Option<Collective>>> = (0..pp)
        .map(|_| CollectiveGroup::new(tp).into_iter().map(Some).collect())
        .collect();
    let epoch = Instant::now();
    let results: Vec<Result<DeviceOutcome>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for endpoint in endpoints {
            let global = endpoint.rank();
            let (pp_rank, tp_rank) = grid.coords(global);
            let c1 = c1_per_column[tp_rank][pp_rank]
                .take()
                .expect("one C1 handle per grid entry");
            let row = (tp > 1).then(|| {
                row_comms[pp_rank][tp_rank]
                    .take()
                    .expect("one row handle per grid entry")
            });
            let tp_env = TpEnv {
                tp,
                tp_rank,
                comm: row.map(Arc::new),
                sync,
            };
            let corpus = corpus.clone();
            joins.push(scope.spawn(move || {
                let select =
                    move |iter: u64, m: usize| -> Vec<Microbatch> { corpus.iteration(iter, m) };
                device_loop(
                    config,
                    schedule,
                    iterations,
                    pp_rank,
                    endpoint,
                    c1,
                    tp_env,
                    None,
                    &select,
                    None,
                    &vp_trace::Tracer::off(),
                    epoch,
                )
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("device thread panicked"))
            .collect()
    });
    let mut outcomes = Vec::with_capacity(grid.devices());
    for r in results {
        outcomes.push(r?);
    }
    // Column 0 feeds the timing report: rows are symmetric, so one column
    // carries the same pipeline shape the schedule describes.
    let col0: Vec<&DeviceOutcome> = outcomes
        .iter()
        .enumerate()
        .filter(|(g, _)| grid.coords(*g).1 == 0)
        .map(|(_, o)| o)
        .collect();
    let mut losses = Vec::new();
    for o in &col0 {
        if !o.losses.is_empty() {
            losses = o.losses.clone();
        }
    }
    let report = TrainReport {
        losses,
        exec: assemble_report(schedule, &col0),
        iter_wall: assemble_iter_wall(&col0),
    };
    Ok((report, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;
    use crate::engine::train_schedule;
    use crate::reference::train_reference;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators;
    use vp_schedule::pass::VocabVariant;
    use vp_tensor::Tensor;

    fn source(config: &TinyConfig) -> DataSource {
        DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ))
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs()),
                "iteration {i}: {x} vs {y} (full: {a:?} vs {b:?})"
            );
        }
    }

    fn vocab_schedule(devices: usize, m: u32) -> Schedule {
        generators::vocab_1f1b(devices, m, VocabVariant::Alg2, PassTimes::default(), true)
    }

    /// The tentpole's numeric claim: TP-sharded pipelines (tp ∈ {2, 4})
    /// train to the single-device reference within the flat pipeline's
    /// tolerance.
    #[test]
    fn tp_sharded_vocab_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 5).unwrap();
        let schedule = vocab_schedule(2, config.microbatches as u32);
        for tp in [2, 4] {
            let report = train_schedule_grid(
                &config,
                &schedule,
                DeviceGrid::new(2, tp),
                TpSyncStyle::AllReduce,
                5,
                &source(&config),
            )
            .unwrap_or_else(|e| panic!("tp {tp}: {e}"));
            assert_close(&reference, &report.losses, 1e-3);
        }
    }

    /// The degenerate column: a `pp × 1` grid is bitwise the flat pipeline.
    #[test]
    fn tp1_grid_is_bitwise_the_flat_pipeline() {
        let config = TinyConfig::default();
        let schedule = vocab_schedule(4, config.microbatches as u32);
        let flat = train_schedule(&config, &schedule, 4, &source(&config)).unwrap();
        let grid = train_schedule_grid(
            &config,
            &schedule,
            DeviceGrid::new(4, 1),
            TpSyncStyle::AllReduce,
            4,
            &source(&config),
        )
        .unwrap();
        assert_eq!(flat.losses, grid.losses, "tp = 1 must not perturb a bit");
    }

    /// PSA (reduce-scatter + all-gather) is bitwise equal to the all-reduce
    /// style: the deterministic collectives sum shards in rank order either
    /// way.
    #[test]
    fn psa_is_bitwise_equal_to_all_reduce() {
        let config = TinyConfig::default();
        let schedule = vocab_schedule(2, config.microbatches as u32);
        let grid = DeviceGrid::new(2, 2);
        let ar = train_schedule_grid(
            &config,
            &schedule,
            grid,
            TpSyncStyle::AllReduce,
            4,
            &source(&config),
        )
        .unwrap();
        let psa = train_schedule_grid(
            &config,
            &schedule,
            grid,
            TpSyncStyle::Psa,
            4,
            &source(&config),
        )
        .unwrap();
        assert_eq!(ar.losses, psa.losses);
    }

    /// The baseline (Megatron-style) vocabulary placement also runs
    /// TP-sharded: the grid composes with both placements.
    #[test]
    fn baseline_placement_trains_on_the_grid() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 4).unwrap();
        let schedule = generators::one_f_one_b(2, config.microbatches as u32, PassTimes::default());
        let report = train_schedule_grid(
            &config,
            &schedule,
            DeviceGrid::new(2, 2),
            TpSyncStyle::AllReduce,
            4,
            &source(&config),
        )
        .unwrap();
        assert_close(&reference, &report.losses, 1e-3);
    }

    /// Zero-bubble B/W splitting under TP: the shadow backward enters the
    /// row collectives, the deferred W stays local (as Megatron's wgrad
    /// does), and the trajectory still matches the reference.
    #[test]
    fn zero_bubble_tp_grid_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 4).unwrap();
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        let schedule = generators::zb_vocab_1f1b(
            2,
            config.microbatches as u32,
            VocabVariant::Alg2,
            times,
            true,
        );
        let report = train_schedule_grid(
            &config,
            &schedule,
            DeviceGrid::new(2, 2),
            TpSyncStyle::AllReduce,
            4,
            &source(&config),
        )
        .unwrap();
        assert_close(&reference, &report.losses, 1e-3);
    }

    fn shard_params(blob: &[u8]) -> Vec<(Tensor, Tensor, Tensor)> {
        use vp_tensor::io::{read_tensor, read_u32};
        let mut input = blob;
        let _timestep = read_u32(&mut input).unwrap();
        let n = read_u32(&mut input).unwrap() as usize;
        (0..n)
            .map(|_| {
                let value = read_tensor(&mut input).unwrap();
                let m = read_tensor(&mut input).unwrap();
                let v = read_tensor(&mut input).unwrap();
                (value, m, v)
            })
            .collect()
    }

    fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// Tied input/output embeddings stay tied when the vocab axis (sharded
    /// over pp) and the TP axis are both active on the same device: each
    /// device holds a *single* tied weight tensor receiving both the input-
    /// and output-side gradients, its replicas across a TP row stay bitwise
    /// identical (values and Adam moments), and the losses match the tied
    /// single-device reference.
    #[test]
    fn tied_embeddings_stay_tied_under_tp() {
        let config = TinyConfig {
            tied: true,
            ..TinyConfig::default()
        };
        let reference = train_reference(&config, 5).unwrap();
        let grid = DeviceGrid::new(2, 2);
        let schedule = vocab_schedule(2, config.microbatches as u32);
        let (report, outcomes) = run_grid(
            &config,
            &schedule,
            grid,
            TpSyncStyle::AllReduce,
            5,
            &source(&config),
        )
        .unwrap();
        assert_close(&reference, &report.losses, 1e-3);
        let blocks_per_stage = config.layers / grid.pp();
        for pp_rank in 0..grid.pp() {
            let a = shard_params(&outcomes[grid.global(pp_rank, 0)].shard);
            let b = shard_params(&outcomes[grid.global(pp_rank, 1)].shard);
            // Single tied tensor: 12 params per TP block, the positional
            // embedding on the first stage, and exactly ONE vocabulary
            // parameter (an untied run would carry two).
            let expected = blocks_per_stage * 12 + usize::from(pp_rank == 0) + 1;
            assert_eq!(a.len(), expected, "stage {pp_rank} parameter count");
            assert_eq!(b.len(), expected);
            // The tied shard is the last parameter; its value and moments
            // must be bitwise identical across the TP row (both columns saw
            // identical full activations and gradients).
            let (av, am, avv) = a.last().unwrap();
            let (bv, bm, bvv) = b.last().unwrap();
            // The tied parameter is a vocab-shard table `[rows, h]`, not a
            // TP-sharded matrix: its width is the full hidden size.
            assert_eq!(av.shape().1, config.hidden);
            assert!(av.shape().0 > 0 && av.shape().0 < config.vocab);
            assert!(
                bits_eq(av, bv),
                "tied shard values diverged on stage {pp_rank}"
            );
            assert!(
                bits_eq(am, bm) && bits_eq(avv, bvv),
                "tied shard moments diverged"
            );
            // Sanity: the row members are NOT identical wholesale — their
            // transformer shards hold different weight columns.
            assert!(
                a.iter()
                    .zip(&b)
                    .any(|((x, _, _), (y, _, _))| !bits_eq(x, y)),
                "row members should differ in their TP shards"
            );
        }
    }

    /// Grid misuse is rejected with actionable errors rather than panics.
    #[test]
    fn mismatched_grid_and_unaligned_tp_are_rejected() {
        let config = TinyConfig::default();
        let schedule = vocab_schedule(2, config.microbatches as u32);
        let err = train_schedule_grid(
            &config,
            &schedule,
            DeviceGrid::new(4, 2),
            TpSyncStyle::AllReduce,
            1,
            &source(&config),
        )
        .unwrap_err();
        assert!(err.to_string().contains("pipeline depth"));
        // heads = 4: tp = 3 cannot produce head-aligned shards.
        let err = train_schedule_grid(
            &config,
            &schedule,
            DeviceGrid::new(2, 3),
            TpSyncStyle::AllReduce,
            1,
            &source(&config),
        )
        .unwrap_err();
        assert!(err.to_string().contains("head"));
    }
}
