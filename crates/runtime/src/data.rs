//! Deterministic synthetic corpora.
//!
//! Substitutes the paper's customized C4 dataset: the convergence
//! *equivalence* between implementations (Appendix E) is data-independent
//! as long as both sides see identical tokens, and a structured synthetic
//! stream gives the model something learnable so the loss actually falls.

use vp_tensor::init::seeded_rng;
use vp_tensor::rng::Rng;

/// One microbatch: input token ids and next-token labels, both `seq_len`
/// long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Microbatch {
    /// Input token ids.
    pub tokens: Vec<usize>,
    /// Next-token labels (`tokens` shifted by one).
    pub labels: Vec<usize>,
}

/// A deterministic stream of training microbatches with learnable
/// structure: each token is an affine function of the previous one plus
/// occasional noise, so a small model can reduce the loss well below
/// `ln(V)`.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    vocab: usize,
    seq_len: usize,
    seed: u64,
}

impl SyntheticCorpus {
    /// Creates a corpus over `vocab` tokens with `seq_len`-long sequences.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2` or `seq_len == 0`.
    pub fn new(vocab: usize, seq_len: usize, seed: u64) -> Self {
        assert!(vocab >= 2, "vocabulary must have at least two tokens");
        assert!(seq_len > 0, "sequences must be non-empty");
        SyntheticCorpus {
            vocab,
            seq_len,
            seed,
        }
    }

    /// The microbatch at global index `index` (iteration-major). Pure
    /// function of `(seed, index)`, so every device generates identical
    /// data without communication.
    pub fn microbatch(&self, index: u64) -> Microbatch {
        let mut rng = seeded_rng(self.seed ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut stream = Vec::with_capacity(self.seq_len + 1);
        let mut tok = rng.gen_range(0..self.vocab);
        stream.push(tok);
        for _ in 0..self.seq_len {
            // Mostly-deterministic transition with 10% uniform noise.
            tok = if rng.gen_range(0..10usize) == 0 {
                rng.gen_range(0..self.vocab)
            } else {
                (tok * 5 + 7) % self.vocab
            };
            stream.push(tok);
        }
        Microbatch {
            tokens: stream[..self.seq_len].to_vec(),
            labels: stream[1..].to_vec(),
        }
    }

    /// All microbatches of one iteration.
    pub fn iteration(&self, iter: u64, microbatches: usize) -> Vec<Microbatch> {
        (0..microbatches as u64)
            .map(|k| self.microbatch(iter * microbatches as u64 + k))
            .collect()
    }
}

/// Where the trainers get their microbatches: the built-in synthetic
/// stream, or a fixed list (e.g. BPE-tokenized text packed by `vp-data`),
/// consumed cyclically.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// The deterministic synthetic corpus.
    Synthetic(SyntheticCorpus),
    /// A pre-tokenized sample list, iterated in order and wrapped around.
    Fixed(std::sync::Arc<Vec<Microbatch>>),
}

impl DataSource {
    /// The microbatches of one iteration.
    ///
    /// # Panics
    ///
    /// Panics if a fixed source is empty.
    pub fn iteration(&self, iter: u64, microbatches: usize) -> Vec<Microbatch> {
        match self {
            DataSource::Synthetic(c) => c.iteration(iter, microbatches),
            DataSource::Fixed(samples) => {
                assert!(!samples.is_empty(), "fixed data source must hold samples");
                (0..microbatches as u64)
                    .map(|k| {
                        let idx = (iter * microbatches as u64 + k) as usize % samples.len();
                        samples[idx].clone()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let c = SyntheticCorpus::new(64, 8, 42);
        assert_eq!(c.microbatch(3), c.microbatch(3));
        assert_ne!(c.microbatch(3), c.microbatch(4));
    }

    #[test]
    fn labels_are_shifted_tokens() {
        let c = SyntheticCorpus::new(64, 8, 1);
        let mb = c.microbatch(0);
        assert_eq!(mb.tokens.len(), 8);
        assert_eq!(mb.labels.len(), 8);
        // The shared interior must match.
        assert_eq!(&mb.tokens[1..], &mb.labels[..7]);
    }

    #[test]
    fn tokens_in_range() {
        let c = SyntheticCorpus::new(13, 32, 7);
        for i in 0..20 {
            let mb = c.microbatch(i);
            assert!(mb.tokens.iter().all(|&t| t < 13));
            assert!(mb.labels.iter().all(|&t| t < 13));
        }
    }

    #[test]
    fn fixed_source_wraps_around() {
        let samples = vec![
            Microbatch {
                tokens: vec![1],
                labels: vec![2],
            },
            Microbatch {
                tokens: vec![3],
                labels: vec![4],
            },
            Microbatch {
                tokens: vec![5],
                labels: vec![6],
            },
        ];
        let src = DataSource::Fixed(std::sync::Arc::new(samples.clone()));
        let it0 = src.iteration(0, 2);
        let it1 = src.iteration(1, 2);
        assert_eq!(it0, vec![samples[0].clone(), samples[1].clone()]);
        assert_eq!(it1, vec![samples[2].clone(), samples[0].clone()]);
    }

    #[test]
    fn transitions_are_mostly_predictable() {
        let c = SyntheticCorpus::new(97, 256, 3);
        let mb = c.microbatch(0);
        let predictable = mb
            .tokens
            .iter()
            .zip(&mb.labels)
            .filter(|(&t, &l)| l == (t * 5 + 7) % 97)
            .count();
        assert!(predictable > 200, "only {predictable}/256 predictable");
    }
}
