//! The single-device reference trainer: forward/backward over the full
//! model per microbatch, gradient accumulation, one Adam step per
//! iteration. The pipeline runtimes must reproduce its loss trajectory.

use crate::data::{DataSource, SyntheticCorpus};
use crate::model::{FullModel, TinyConfig};
use vp_model::block::{BlockCache, TransformerBlock};
use vp_tensor::nn::{softmax_cross_entropy, Embedding};
use vp_tensor::optim::{Adam, Optimizer, Param};
use vp_tensor::{Result, Tensor};

/// Forward through a slice of transformer blocks, collecting caches.
pub(crate) fn forward_blocks(
    blocks: &[TransformerBlock],
    x: &Tensor,
) -> Result<(Tensor, Vec<BlockCache>)> {
    let mut h = x.clone();
    let mut caches = Vec::with_capacity(blocks.len());
    for block in blocks {
        let (next, cache) = block.forward(&h)?;
        h = next;
        caches.push(cache);
    }
    Ok((h, caches))
}

/// Backward through a slice of transformer blocks (reverse order),
/// accumulating parameter gradients.
pub(crate) fn backward_blocks(
    blocks: &mut [TransformerBlock],
    caches: &[BlockCache],
    dy: &Tensor,
) -> Result<Tensor> {
    let mut grad = dy.clone();
    for (block, cache) in blocks.iter_mut().rev().zip(caches.iter().rev()) {
        grad = block.backward(cache, &grad)?;
    }
    Ok(grad)
}

/// Trains the full model on one device and returns the per-iteration mean
/// loss — the reference curve of the Appendix E comparison.
///
/// # Errors
///
/// Propagates tensor-shape errors (which indicate a configuration bug).
pub fn train_reference(config: &TinyConfig, iterations: usize) -> Result<Vec<f64>> {
    let corpus = DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    train_reference_on(config, iterations, &corpus)
}

/// Like [`train_reference`], with an explicit [`DataSource`] (e.g. a
/// BPE-tokenized corpus packed by `vp-data`).
///
/// # Errors
///
/// Propagates tensor-shape errors (which indicate a configuration bug).
pub fn train_reference_on(
    config: &TinyConfig,
    iterations: usize,
    corpus: &DataSource,
) -> Result<Vec<f64>> {
    let full = FullModel::build(config);
    // Untied: separate input table and output matrix. Tied (§6.1): one
    // shared parameter serves both; `input` is unused.
    let mut input = Embedding::from_weight(full.input_weight.clone());
    let mut pos = Param::new(full.pos_weight.clone());
    let mut blocks = full.blocks.clone();
    let mut output_w = Param::new(full.output_weight);
    let mut adam = Adam::new(config.lr);
    let mut losses = Vec::with_capacity(iterations);

    for iter in 0..iterations {
        let mut iter_loss = 0.0;
        for mb in corpus.iteration(iter as u64, config.microbatches) {
            // Forward.
            let (embedded, emb_cache) = if config.tied {
                let shared = Embedding::from_weight(output_w.value().clone());
                shared.forward(&mb.tokens)?
            } else {
                input.forward(&mb.tokens)?
            };
            let x0 = embedded.add(pos.value())?;
            let (h, caches) = forward_blocks(&blocks, &x0)?;
            let logits = h.matmul_nt(output_w.value())?;
            let (out, grad) = softmax_cross_entropy(&logits, &mb.labels)?;
            iter_loss += out.loss;
            // Backward.
            let dw_out = grad.dlogits.matmul_tn(&h)?;
            output_w.accumulate(&dw_out)?;
            let dh = grad.dlogits.matmul(output_w.value())?;
            let dx0 = backward_blocks(&mut blocks, &caches, &dh)?;
            pos.accumulate(&dx0)?;
            if config.tied {
                let mut scatter = Embedding::from_weight(output_w.value().clone());
                scatter.backward(&emb_cache, &dx0)?;
                output_w.accumulate(scatter.params_mut()[0].grad())?;
            } else {
                input.backward(&emb_cache, &dx0)?;
            }
        }
        losses.push(iter_loss / config.microbatches as f64);
        // Step every parameter.
        adam.step(&mut output_w)?;
        adam.step(&mut pos)?;
        for block in &mut blocks {
            for p in block.params_mut() {
                adam.step(p)?;
            }
        }
        if !config.tied {
            for p in input.params_mut() {
                adam.step(p)?;
            }
        }
        adam.next_iteration();
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_on_structured_data() {
        let config = TinyConfig::default();
        let losses = train_reference(&config, 12).unwrap();
        let start = losses[0];
        let end = *losses.last().unwrap();
        assert!(start > end, "loss did not decrease: {losses:?}");
        // First loss should be near ln(V) for random init.
        let ln_v = (config.vocab as f64).ln();
        assert!((start - ln_v).abs() < 0.5, "start {start} vs ln(V) {ln_v}");
    }

    #[test]
    fn training_is_deterministic() {
        let config = TinyConfig::default();
        let a = train_reference(&config, 4).unwrap();
        let b = train_reference(&config, 4).unwrap();
        assert_eq!(a, b);
    }
}
