//! Vocabulary-layer pass handlers of the schedule interpreter: the
//! sharded input layer (`InputF`/`InputB`) and the §4 output-layer `S`/`T`
//! passes with their `C0`/`C1`/`C2` traffic.
//!
//! Communication mapping (mirroring §6.1's implementation):
//!
//! * `C0` (broadcast of the last virtual stage's output to all vocabulary
//!   shards): point-to-point fan-out from its host device;
//! * `C1` (softmax statistics all-reduce, plus the `∇X` all-reduce for
//!   Algorithm 2): a true collective, submitted to a per-device
//!   communication stream so it overlaps with compute exactly as the paper
//!   overlaps NCCL kernels;
//! * `C2` (Algorithm 1's `∇X` reduce): point-to-point fan-in to the last
//!   virtual stage's device (the paper uses an NCCL AllReduce for volume
//!   balance; the fan-in is numerically identical);
//! * input-layer all-reduce / gradient broadcast: fan-in to and fan-out
//!   from the first virtual stage's device.

use crate::comm::{TAG_C0, TAG_C2, TAG_INGRAD, TAG_INPART};
use crate::data::Microbatch;
use crate::engine::{Device, Mode};
use crate::state::BarrierSlot;
use std::sync::Arc;
use vp_core::output::{BarrierOutput, SState};
use vp_core::VocabAlgo;
use vp_tensor::{Result, Tensor, TensorError};

impl Device {
    /// Sharded input-layer forward: embed this shard's slice of the
    /// vocabulary and fan the partial embedding in to the first virtual
    /// stage's device (the input all-reduce of §6.1).
    pub(crate) fn input_f(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let partial = match (&self.tied_shard, &self.input_shard) {
            (Some(tied), _) => tied.input_forward_local(&mb.tokens)?,
            (None, Some(shard)) => shard.forward_local(&mb.tokens)?,
            (None, None) => unreachable!("vocab mode has input shards"),
        };
        let first_dev = self.map.device_of(0).0;
        self.send(first_dev, TAG_INPART | k as u64, &partial)
    }

    /// Produces the first virtual stage's input: the full embedding in
    /// baseline mode, the summed partial embeddings in vocab mode — plus
    /// the positional embedding either way.
    pub(crate) fn embed_input(&mut self, k: u32, mb: &Microbatch) -> Result<Tensor> {
        let mut x = match self.mode {
            Mode::Baseline => {
                let input = self
                    .full_input
                    .as_ref()
                    .expect("baseline hosts the input layer");
                let (embedded, cache) = input.forward(&mb.tokens)?;
                self.state(k).emb_cache = Some(cache);
                embedded
            }
            Mode::Vocab(_) => {
                // Sum the p partial embeddings (the input all-reduce).
                let mut acc = Tensor::zeros(mb.tokens.len(), self.config.hidden);
                for src in 0..self.map.devices {
                    let part = self.recv(src, TAG_INPART | k as u64)?;
                    acc.add_assign(&part)?;
                }
                acc
            }
        };
        let pos = self
            .pos
            .as_ref()
            .expect("first-stage device owns the positional embedding");
        x.add_assign(pos.value())?;
        Ok(x)
    }

    /// Output-layer `S` pass: local softmax statistics on this shard's
    /// logits, then the `C1` barrier submitted asynchronously on the
    /// communication stream.
    pub(crate) fn s_pass(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let algo = self.algo();
        let root = self.c0_root();
        let x = self.recv(root, TAG_C0 | k as u64)?;
        let labels = mb.labels.clone();
        let mut state = Some(match (&self.tied_shard, &self.output_shard) {
            (Some(tied), _) => tied.s_pass(algo, &x, &labels)?,
            (None, Some(shard)) => shard.s_pass(algo, &x, &labels)?,
            (None, None) => unreachable!("vocab mode has output shards"),
        });
        let comm = Arc::clone(&self.c1_comm);
        let handle = self
            .c1_stream
            .submit(move || -> Result<(SState, BarrierOutput)> {
                let mut state = state.take().expect("state moved into job");
                let out = match algo {
                    VocabAlgo::Alg1 => state.barrier_alg1(&comm)?,
                    VocabAlgo::Alg2 => state.barrier_alg2(&comm)?,
                    VocabAlgo::Naive => {
                        return Err(TensorError::InvalidArgument(
                            "naive grouping is not streamed".into(),
                        ))
                    }
                };
                Ok((state, out))
            });
        let st = self.state(k);
        st.x_c0 = Some(x);
        st.barrier = BarrierSlot::Pending(handle);
        Ok(())
    }

    /// Output-layer `T` pass: consume the resolved barrier, accumulate the
    /// shard's weight gradient, and produce its `∇X` contribution (sent
    /// over `C2` for Algorithm 1; all-reduced inside the barrier for
    /// Algorithm 2).
    pub(crate) fn t_pass(&mut self, k: u32) -> Result<()> {
        let algo = self.algo();
        let record_loss = self.rank == 0;
        let st = self.states.get_mut(&k).expect("T after S");
        let (state, loss) = st.barrier.take_state()?;
        let x = st.x_c0.take().expect("S stored the broadcast activation");
        if record_loss {
            self.losses.push(loss);
        }
        match algo {
            VocabAlgo::Alg1 => {
                let dx_partial = match (&mut self.tied_shard, &mut self.output_shard) {
                    (Some(tied), _) => tied.t_pass_alg1(&state, &x)?,
                    (None, Some(shard)) => shard.t_pass_alg1(&state, &x)?,
                    (None, None) => unreachable!("vocab mode has output shards"),
                };
                let root = self.c0_root();
                self.send(root, TAG_C2 | k as u64, &dx_partial)?;
            }
            VocabAlgo::Alg2 => match (&mut self.tied_shard, &mut self.output_shard) {
                (Some(tied), _) => tied.t_pass_alg2(&state, &x)?,
                (None, Some(shard)) => shard.t_pass_alg2(&state, &x)?,
                (None, None) => unreachable!("vocab mode has output shards"),
            },
            VocabAlgo::Naive => unreachable!("rejected at submission"),
        }
        Ok(())
    }

    /// Sharded input-layer backward: receive the broadcast embedding
    /// gradient and scatter it into this shard's rows.
    pub(crate) fn input_b(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let first_dev = self.map.device_of(0).0;
        let dy = self.recv(first_dev, TAG_INGRAD | k as u64)?;
        match (&mut self.tied_shard, &mut self.input_shard) {
            (Some(tied), _) => tied.input_backward(&mb.tokens, &dy),
            (None, Some(shard)) => shard.backward(&mb.tokens, &dy),
            (None, None) => unreachable!("vocab mode has input shards"),
        }
    }
}
