//! Schedule-family front end over the generic interpreter in
//! [`crate::engine`]: maps a `(Mode, ScheduleFamily)` selection onto the
//! matching `vp-schedule` generator and delegates execution to
//! [`train_schedule`]. The interpreter
//! itself is family-agnostic — these wrappers only exist so callers can
//! ask for "1F1B with Vocab-2" without touching generators.

use crate::data::{DataSource, SyntheticCorpus};
use crate::engine::train_schedule;
pub use crate::engine::Mode;
use crate::model::TinyConfig;
use vp_core::VocabAlgo;
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::{Schedule, VocabVariant};
use vp_tensor::{Result, TensorError};

/// Which pipeline schedule the trainer executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// Classic 1F1B: one model chunk per device.
    OneFOneB,
    /// V-Half (Qi et al. 2024): two chunks per device in a V-shape.
    VHalf,
}

/// Builds the concrete schedule for a `(mode, family)` selection. The
/// schedule is the single source of truth downstream: device count, chunk
/// count, placement and microbatches are all read back from it.
pub(crate) fn build_schedule(
    mode: Mode,
    family: ScheduleFamily,
    devices: usize,
    m: u32,
) -> Result<Schedule> {
    let times = PassTimes::default();
    let variant =
        match mode {
            Mode::Baseline => None,
            Mode::Vocab(VocabAlgo::Alg1) => Some(VocabVariant::Alg1),
            Mode::Vocab(VocabAlgo::Alg2) => Some(VocabVariant::Alg2),
            Mode::Vocab(VocabAlgo::Naive) => return Err(TensorError::InvalidArgument(
                "the streamed runtime supports Algorithms 1 and 2; use vp-core's fused naive path"
                    .into(),
            )),
        };
    Ok(match (family, variant) {
        (ScheduleFamily::OneFOneB, None) => generators::one_f_one_b(devices, m, times),
        (ScheduleFamily::OneFOneB, Some(v)) => generators::vocab_1f1b(devices, m, v, times, true),
        (ScheduleFamily::VHalf, None) => generators::vhalf(devices, m, times),
        (ScheduleFamily::VHalf, Some(v)) => generators::vhalf_vocab(devices, m, v, times, true),
    })
}

/// Trains the tiny model with 1F1B pipeline parallelism across `devices`
/// threads and returns the per-iteration mean loss. See
/// [`train_pipeline_with`] for schedule selection.
///
/// # Errors
///
/// As in [`train_pipeline_with`].
pub fn train_pipeline(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    iterations: usize,
) -> Result<Vec<f64>> {
    train_pipeline_with(config, devices, mode, ScheduleFamily::OneFOneB, iterations)
}

/// Trains the tiny model with pipeline parallelism under the chosen
/// schedule family and vocabulary placement, returning the per-iteration
/// mean loss. With identical `config`, the trajectory matches
/// [`crate::reference::train_reference`] up to `f32` accumulation-order
/// noise (the Appendix E claim) for every combination.
///
/// # Errors
///
/// Returns an error for invalid configurations (layer count not divisible
/// by the virtual stage count, unsupported mode) or if any shard fails
/// numerically.
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_with(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
) -> Result<Vec<f64>> {
    let corpus = DataSource::Synthetic(SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    train_pipeline_on(config, devices, mode, family, iterations, &corpus)
}

/// Like [`train_pipeline_with`], with an explicit [`DataSource`] (e.g. a
/// BPE-tokenized corpus packed by `vp-data`). Every device reads the same
/// source, mirroring replicated data loaders.
///
/// # Errors
///
/// As in [`train_pipeline_with`].
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_on(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    corpus: &DataSource,
) -> Result<Vec<f64>> {
    let schedule = build_schedule(mode, family, devices, config.microbatches as u32)?;
    Ok(train_schedule(config, &schedule, iterations, corpus)?.losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::train_reference;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs()),
                "iteration {i}: {x} vs {y} (full: {a:?} vs {b:?})"
            );
        }
    }

    #[test]
    fn baseline_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 2, Mode::Baseline, 6).unwrap();
        assert_close(&reference, &pipeline, 1e-4);
    }

    #[test]
    fn vocab_alg1_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg1), 6).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vocab_alg2_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 6).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vocab_modes_agree_with_each_other() {
        let config = TinyConfig::default();
        let a1 = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Alg1), 5).unwrap();
        let a2 = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Alg2), 5).unwrap();
        assert_close(&a1, &a2, 1e-3);
    }

    #[test]
    fn loss_decreases_under_pipeline_training() {
        let config = TinyConfig::default();
        let losses = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 10).unwrap();
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn vhalf_baseline_matches_reference() {
        // 2 devices × 2 chunks = 4 virtual stages of 1 layer each.
        let config = TinyConfig::default();
        let reference = train_reference(&config, 5).unwrap();
        let pipeline =
            train_pipeline_with(&config, 2, Mode::Baseline, ScheduleFamily::VHalf, 5).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vhalf_vocab_matches_reference() {
        // The paper's §6.4 configuration in miniature: V-Half + Vocab-1/2.
        let config = TinyConfig {
            layers: 8,
            ..TinyConfig::default()
        };
        let reference = train_reference(&config, 5).unwrap();
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let pipeline =
                train_pipeline_with(&config, 4, Mode::Vocab(algo), ScheduleFamily::VHalf, 5)
                    .unwrap();
            assert_close(&reference, &pipeline, 1e-3);
        }
    }

    #[test]
    fn tied_pipeline_matches_tied_reference() {
        let config = TinyConfig {
            tied: true,
            ..TinyConfig::default()
        };
        let reference = train_reference(&config, 6).unwrap();
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let pipeline = train_pipeline(&config, 4, Mode::Vocab(algo), 6).unwrap();
            assert_close(&reference, &pipeline, 1e-3);
        }
    }

    #[test]
    fn tied_baseline_is_rejected() {
        let config = TinyConfig {
            tied: true,
            ..TinyConfig::default()
        };
        let err = train_pipeline(&config, 2, Mode::Baseline, 1).unwrap_err();
        assert!(err.to_string().contains("tied"));
    }

    #[test]
    fn indivisible_layers_are_rejected() {
        let config = TinyConfig::default();
        assert!(train_pipeline(&config, 3, Mode::Baseline, 1).is_err());
        // V-Half needs divisibility by 2·devices.
        assert!(train_pipeline_with(
            &TinyConfig {
                layers: 6,
                ..TinyConfig::default()
            },
            2,
            Mode::Baseline,
            ScheduleFamily::VHalf,
            1
        )
        .is_err());
    }

    #[test]
    fn pipelined_training_is_deterministic_across_runs() {
        // Thread scheduling varies between runs, but the pass order and
        // every floating-point reduction order are fixed by the schedule,
        // so two runs must agree bit for bit.
        let config = TinyConfig::default();
        let a = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 4).unwrap();
        let b = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn naive_mode_is_rejected_with_guidance() {
        let config = TinyConfig::default();
        let err = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Naive), 1).unwrap_err();
        assert!(err.to_string().contains("naive"));
    }
}
