//! The pipelined trainer: one thread per device interpreting a
//! `vp-schedule` pass list with real numerics. Supports 1F1B (one chunk
//! per device) and V-Half (two chunks in a V-shape, §6.4) schedules.
//!
//! Communication mapping (mirroring §6.1's implementation):
//!
//! * stage-boundary activations and gradients: tagged point-to-point
//!   packets between the devices hosting adjacent *virtual* stages;
//! * `C0` (broadcast of the last virtual stage's output to all vocabulary
//!   shards): point-to-point fan-out from its host device;
//! * `C1` (softmax statistics all-reduce, plus the `∇X` all-reduce for
//!   Algorithm 2): a true collective, submitted to a per-device
//!   communication stream so it overlaps with compute exactly as the paper
//!   overlaps NCCL kernels;
//! * `C2` (Algorithm 1's `∇X` reduce): point-to-point fan-in to the last
//!   virtual stage's device (the paper uses an NCCL AllReduce for volume
//!   balance; the fan-in is numerically identical);
//! * input-layer all-reduce / gradient broadcast: fan-in to and fan-out
//!   from the first virtual stage's device.

use crate::data::{DataSource, Microbatch, SyntheticCorpus};
use crate::model::{FullModel, TinyConfig};
use crate::reference::{backward_blocks, forward_blocks};
use std::collections::HashMap;
use std::sync::Arc;
use vp_collectives::{Collective, CollectiveGroup, CommStream, JobHandle, P2pEndpoint, P2pNetwork, Packet};
use vp_core::output::{BarrierOutput, OutputShard, SState};
use vp_core::{InputShard, TiedShard, VocabAlgo};
use vp_model::block::{BlockCache, TransformerBlock};
use vp_model::partition::VocabPartition;
use vp_schedule::block::PassTimes;
use vp_schedule::generators;
use vp_schedule::pass::{
    placement_device_of, placement_stage_of, ChunkPlacement, PassKind, Schedule, VocabVariant,
};
use vp_tensor::nn::{softmax_cross_entropy, CrossEntropyGrad, Embedding, EmbeddingCache};
use vp_tensor::optim::{Adam, Optimizer, Param};
use vp_tensor::{Result, Tensor, TensorError};

/// How the vocabulary layers are placed and executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Megatron-style: full input layer with the first virtual stage, full
    /// output layer with the last (in V-Half, both on device 0).
    Baseline,
    /// Vocabulary Parallelism with Algorithm 1 or 2 (the naive 3-barrier
    /// grouping is only supported by the fused verification path in
    /// `vp-core`, not by the streamed runtime).
    Vocab(VocabAlgo),
}

/// Which pipeline schedule the trainer executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// Classic 1F1B: one model chunk per device.
    OneFOneB,
    /// V-Half (Qi et al. 2024): two chunks per device in a V-shape.
    VHalf,
}

impl ScheduleFamily {
    fn chunks(self) -> u8 {
        match self {
            ScheduleFamily::OneFOneB => 1,
            ScheduleFamily::VHalf => 2,
        }
    }
}

// Tag spaces for point-to-point traffic (high bits select the channel;
// bits 24.. carry the destination virtual stage for boundary traffic).
const TAG_ACT: u64 = 1 << 40;
const TAG_GRAD: u64 = 2 << 40;
const TAG_C0: u64 = 3 << 40;
const TAG_C2: u64 = 4 << 40;
const TAG_INPART: u64 = 5 << 40;
const TAG_INGRAD: u64 = 6 << 40;

fn stage_tag(base: u64, vs: usize, k: u32) -> u64 {
    base | ((vs as u64) << 24) | k as u64
}

fn to_packet(tag: u64, t: &Tensor) -> Packet {
    Packet::new(tag, t.rows(), t.cols(), t.data().to_vec())
}

fn from_packet(p: Packet) -> Tensor {
    Tensor::from_vec(p.rows, p.cols, p.data).expect("packet carries a consistent shape")
}

/// Virtual-stage geometry shared by all handlers.
#[derive(Debug, Clone, Copy)]
struct StageMap {
    devices: usize,
    chunks: u8,
    placement: ChunkPlacement,
}

impl StageMap {
    fn last_vs(&self) -> usize {
        self.devices * self.chunks as usize - 1
    }

    fn device_of(&self, vs: usize) -> (usize, u8) {
        placement_device_of(self.placement, self.devices, vs)
    }

    fn vs_of(&self, device: usize, chunk: u8) -> usize {
        placement_stage_of(self.placement, self.devices, device, chunk)
    }
}

/// Per-microbatch vocabulary/output state on one device.
#[derive(Default)]
struct MbState {
    emb_cache: Option<EmbeddingCache>,
    x_c0: Option<Tensor>,
    barrier: BarrierSlot,
    h_last: Option<Tensor>,
    out_grad: Option<CrossEntropyGrad>,
}

#[derive(Default)]
#[allow(clippy::large_enum_variant)] // one slot per in-flight microbatch; size is fine
enum BarrierSlot {
    #[default]
    Empty,
    Pending(JobHandle<Result<(SState, BarrierOutput)>>),
    /// Resolved barrier. The deferred `T` pass takes the softmax state;
    /// the last stage's `B` takes the `∇X` — in either order, so both are
    /// stored independently.
    Ready {
        state: Option<SState>,
        out: BarrierOutput,
    },
}

impl BarrierSlot {
    /// Waits for the in-flight barrier if necessary.
    fn resolve(&mut self) -> Result<()> {
        if let BarrierSlot::Pending(_) = self {
            let BarrierSlot::Pending(handle) = std::mem::take(self) else { unreachable!() };
            let (state, out) = handle.wait()?;
            *self = BarrierSlot::Ready { state: Some(state), out };
        }
        match self {
            BarrierSlot::Ready { .. } => Ok(()),
            _ => Err(TensorError::InvalidArgument("barrier consumed before S pass submitted it".into())),
        }
    }

    /// The globally rescaled softmax state (consumed by the `T` pass).
    fn take_state(&mut self) -> Result<(SState, f64)> {
        self.resolve()?;
        let BarrierSlot::Ready { state, out } = self else { unreachable!("just resolved") };
        let loss = out.loss;
        state
            .take()
            .map(|s| (s, loss))
            .ok_or_else(|| TensorError::InvalidArgument("barrier state consumed twice".into()))
    }

    /// The reduced `∇X` (consumed by the last stage's `B`, Algorithm 2).
    fn take_dx(&mut self) -> Result<Tensor> {
        self.resolve()?;
        let BarrierSlot::Ready { out, .. } = self else { unreachable!("just resolved") };
        out.dx.take().ok_or_else(|| {
            TensorError::InvalidArgument("barrier did not produce ∇X (or it was consumed twice)".into())
        })
    }
}

struct Device {
    rank: usize,
    mode: Mode,
    config: TinyConfig,
    map: StageMap,
    /// Transformer blocks per chunk hosted by this device.
    blocks_by_chunk: Vec<Vec<TransformerBlock>>,
    pos: Option<Param>,
    full_input: Option<Embedding>,
    full_output: Option<Param>,
    input_shard: Option<InputShard>,
    output_shard: Option<OutputShard>,
    /// Tied-embedding shard (§6.1): replaces both `input_shard` and
    /// `output_shard` when `config.tied` is set.
    tied_shard: Option<TiedShard>,
    p2p: P2pEndpoint,
    c1_comm: Arc<Collective>,
    c1_stream: CommStream,
    /// Block-activation caches per (microbatch, chunk).
    caches: HashMap<(u32, u8), Vec<BlockCache>>,
    states: HashMap<u32, MbState>,
    losses: Vec<f64>,
}

impl Device {
    fn state(&mut self, k: u32) -> &mut MbState {
        self.states.entry(k).or_default()
    }

    fn algo(&self) -> VocabAlgo {
        match self.mode {
            Mode::Vocab(a) => a,
            Mode::Baseline => VocabAlgo::Alg1,
        }
    }

    fn c0_root(&self) -> usize {
        self.map.device_of(self.map.last_vs()).0
    }

    fn recv(&mut self, src: usize, tag: u64) -> Result<Tensor> {
        let packet = self
            .p2p
            .recv_tag(src, tag)
            .map_err(|e| TensorError::InvalidArgument(format!("p2p recv failed: {e}")))?;
        Ok(from_packet(packet))
    }

    fn send(&self, dst: usize, tag: u64, t: &Tensor) -> Result<()> {
        self.p2p
            .send(dst, to_packet(tag, t))
            .map_err(|e| TensorError::InvalidArgument(format!("p2p send failed: {e}")))
    }

    fn run_pass(&mut self, kind: PassKind, k: u32, chunk: u8, mb: &Microbatch) -> Result<()> {
        match kind {
            PassKind::InputF => self.input_f(k, mb),
            PassKind::F => self.forward(k, chunk, mb),
            PassKind::S => self.s_pass(k, mb),
            PassKind::T => self.t_pass(k),
            PassKind::B => self.backward(k, chunk, mb),
            PassKind::InputB => self.input_b(k, mb),
            PassKind::W | PassKind::S2 | PassKind::OutputF | PassKind::OutputB => {
                Err(TensorError::InvalidArgument(format!("runtime does not execute {kind:?} passes")))
            }
        }
    }

    fn input_f(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let partial = match (&self.tied_shard, &self.input_shard) {
            (Some(tied), _) => tied.input_forward_local(&mb.tokens)?,
            (None, Some(shard)) => shard.forward_local(&mb.tokens)?,
            (None, None) => unreachable!("vocab mode has input shards"),
        };
        let first_dev = self.map.device_of(0).0;
        self.send(first_dev, TAG_INPART | k as u64, &partial)
    }

    fn embed_input(&mut self, k: u32, mb: &Microbatch) -> Result<Tensor> {
        let mut x = match self.mode {
            Mode::Baseline => {
                let input = self.full_input.as_ref().expect("baseline hosts the input layer");
                let (embedded, cache) = input.forward(&mb.tokens)?;
                self.state(k).emb_cache = Some(cache);
                embedded
            }
            Mode::Vocab(_) => {
                // Sum the p partial embeddings (the input all-reduce).
                let mut acc = Tensor::zeros(mb.tokens.len(), self.config.hidden);
                for src in 0..self.map.devices {
                    let part = self.recv(src, TAG_INPART | k as u64)?;
                    acc.add_assign(&part)?;
                }
                acc
            }
        };
        let pos = self.pos.as_ref().expect("first-stage device owns the positional embedding");
        x.add_assign(pos.value())?;
        Ok(x)
    }

    fn forward(&mut self, k: u32, chunk: u8, mb: &Microbatch) -> Result<()> {
        let vs = self.map.vs_of(self.rank, chunk);
        let x0 = if vs == 0 {
            self.embed_input(k, mb)?
        } else {
            let (src, _) = self.map.device_of(vs - 1);
            self.recv(src, stage_tag(TAG_ACT, vs, k))?
        };
        let (h, caches) = forward_blocks(&self.blocks_by_chunk[chunk as usize], &x0)?;
        self.caches.insert((k, chunk), caches);
        if vs < self.map.last_vs() {
            let (dst, _) = self.map.device_of(vs + 1);
            self.send(dst, stage_tag(TAG_ACT, vs + 1, k), &h)?;
        } else {
            match self.mode {
                Mode::Baseline => {
                    let w = self.full_output.as_ref().expect("baseline hosts the output layer");
                    let logits = h.matmul_nt(w.value())?;
                    let (out, grad) = softmax_cross_entropy(&logits, &mb.labels)?;
                    self.losses.push(out.loss);
                    let st = self.state(k);
                    st.h_last = Some(h);
                    st.out_grad = Some(grad);
                }
                Mode::Vocab(_) => {
                    // C0: fan the last transformer output out to every
                    // vocabulary shard (including ourselves).
                    for dst in 0..self.map.devices {
                        self.send(dst, TAG_C0 | k as u64, &h)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn s_pass(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let algo = self.algo();
        let root = self.c0_root();
        let x = self.recv(root, TAG_C0 | k as u64)?;
        let labels = mb.labels.clone();
        let mut state = Some(match (&self.tied_shard, &self.output_shard) {
            (Some(tied), _) => tied.s_pass(algo, &x, &labels)?,
            (None, Some(shard)) => shard.s_pass(algo, &x, &labels)?,
            (None, None) => unreachable!("vocab mode has output shards"),
        });
        let comm = Arc::clone(&self.c1_comm);
        let handle = self.c1_stream.submit(move || -> Result<(SState, BarrierOutput)> {
            let mut state = state.take().expect("state moved into job");
            let out = match algo {
                VocabAlgo::Alg1 => state.barrier_alg1(&comm)?,
                VocabAlgo::Alg2 => state.barrier_alg2(&comm)?,
                VocabAlgo::Naive => {
                    return Err(TensorError::InvalidArgument("naive grouping is not streamed".into()))
                }
            };
            Ok((state, out))
        });
        let st = self.state(k);
        st.x_c0 = Some(x);
        st.barrier = BarrierSlot::Pending(handle);
        Ok(())
    }

    fn t_pass(&mut self, k: u32) -> Result<()> {
        let algo = self.algo();
        let record_loss = self.rank == 0;
        let st = self.states.get_mut(&k).expect("T after S");
        let (state, loss) = st.barrier.take_state()?;
        let x = st.x_c0.take().expect("S stored the broadcast activation");
        if record_loss {
            self.losses.push(loss);
        }
        match algo {
            VocabAlgo::Alg1 => {
                let dx_partial = match (&mut self.tied_shard, &mut self.output_shard) {
                    (Some(tied), _) => tied.t_pass_alg1(&state, &x)?,
                    (None, Some(shard)) => shard.t_pass_alg1(&state, &x)?,
                    (None, None) => unreachable!("vocab mode has output shards"),
                };
                let root = self.c0_root();
                self.send(root, TAG_C2 | k as u64, &dx_partial)?;
            }
            VocabAlgo::Alg2 => match (&mut self.tied_shard, &mut self.output_shard) {
                (Some(tied), _) => tied.t_pass_alg2(&state, &x)?,
                (None, Some(shard)) => shard.t_pass_alg2(&state, &x)?,
                (None, None) => unreachable!("vocab mode has output shards"),
            },
            VocabAlgo::Naive => unreachable!("rejected at submission"),
        }
        Ok(())
    }

    fn backward(&mut self, k: u32, chunk: u8, mb: &Microbatch) -> Result<()> {
        let vs = self.map.vs_of(self.rank, chunk);
        let dy = if vs == self.map.last_vs() {
            match self.mode {
                Mode::Baseline => {
                    let st = self.states.get_mut(&k).expect("B after F");
                    let grad = st.out_grad.take().expect("last stage stored the loss gradient");
                    let h = st.h_last.take().expect("last stage stored its output");
                    let w = self.full_output.as_mut().expect("baseline output layer");
                    let dw = grad.dlogits.matmul_tn(&h)?;
                    w.accumulate(&dw)?;
                    grad.dlogits.matmul(w.value())?
                }
                Mode::Vocab(VocabAlgo::Alg2) => {
                    self.states.get_mut(&k).expect("B after S").barrier.take_dx()?
                }
                Mode::Vocab(VocabAlgo::Alg1) => {
                    // C2: sum the p partial ∇X contributions.
                    let mut acc = Tensor::zeros(mb.labels.len(), self.config.hidden);
                    for src in 0..self.map.devices {
                        let part = self.recv(src, TAG_C2 | k as u64)?;
                        acc.add_assign(&part)?;
                    }
                    acc
                }
                Mode::Vocab(VocabAlgo::Naive) => unreachable!("rejected at construction"),
            }
        } else {
            let (src, _) = self.map.device_of(vs + 1);
            self.recv(src, stage_tag(TAG_GRAD, vs, k))?
        };
        let caches = self.caches.remove(&(k, chunk)).expect("F stored caches");
        let dx0 = backward_blocks(&mut self.blocks_by_chunk[chunk as usize], &caches, &dy)?;
        if vs > 0 {
            let (dst, _) = self.map.device_of(vs - 1);
            self.send(dst, stage_tag(TAG_GRAD, vs - 1, k), &dx0)?;
        } else {
            self.pos.as_mut().expect("first-stage device owns pos").accumulate(&dx0)?;
            match self.mode {
                Mode::Baseline => {
                    let cache =
                        self.states.get_mut(&k).expect("B after F").emb_cache.take().expect("F cached ids");
                    self.full_input.as_mut().expect("baseline input layer").backward(&cache, &dx0)?;
                }
                Mode::Vocab(_) => {
                    // Broadcast the embedding gradient to every input shard.
                    for dst in 0..self.map.devices {
                        self.send(dst, TAG_INGRAD | k as u64, &dx0)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn input_b(&mut self, k: u32, mb: &Microbatch) -> Result<()> {
        let first_dev = self.map.device_of(0).0;
        let dy = self.recv(first_dev, TAG_INGRAD | k as u64)?;
        match (&mut self.tied_shard, &mut self.input_shard) {
            (Some(tied), _) => tied.input_backward(&mb.tokens, &dy),
            (None, Some(shard)) => shard.backward(&mb.tokens, &dy),
            (None, None) => unreachable!("vocab mode has input shards"),
        }
    }

    /// All trainable parameters on this device, in a deterministic order
    /// (shared by the optimizer step and data-parallel gradient sync).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params: Vec<&mut Param> = Vec::new();
        for blocks in &mut self.blocks_by_chunk {
            for block in blocks {
                params.extend(block.params_mut());
            }
        }
        if let Some(p) = &mut self.pos {
            params.push(p);
        }
        if let Some(e) = &mut self.full_input {
            params.extend(e.params_mut());
        }
        if let Some(w) = &mut self.full_output {
            params.push(w);
        }
        if let Some(s) = &mut self.input_shard {
            params.push(s.weight_mut());
        }
        if let Some(s) = &mut self.output_shard {
            params.push(s.weight_mut());
        }
        if let Some(s) = &mut self.tied_shard {
            params.push(s.weight_mut());
        }
        params
    }

    /// Data-parallel gradient synchronization: sum-all-reduce every
    /// parameter gradient across this stage's replicas.
    fn sync_grads(&mut self, comm: &Collective) -> Result<()> {
        for p in self.params_mut() {
            comm.all_reduce(p.grad_mut().data_mut(), vp_collectives::ReduceOp::Sum)
                .map_err(|e| TensorError::InvalidArgument(format!("gradient sync failed: {e}")))?;
        }
        Ok(())
    }

    fn optimizer_step(&mut self, adam: &mut Adam) -> Result<()> {
        for p in self.params_mut() {
            adam.step(p)?;
        }
        adam.next_iteration();
        Ok(())
    }

    /// Serializes this device's parameter state (values + Adam moments) in
    /// the deterministic `params_mut` order — one shard of a distributed
    /// checkpoint.
    fn save_state(&mut self, adam_timestep: i32) -> Vec<u8> {
        use vp_tensor::io::{write_tensor, write_u32};
        let mut buf = Vec::new();
        write_u32(&mut buf, adam_timestep as u32);
        let params = self.params_mut();
        write_u32(&mut buf, params.len() as u32);
        for p in params {
            write_tensor(&mut buf, p.value());
            let (m, v) = p.moments();
            write_tensor(&mut buf, m);
            write_tensor(&mut buf, v);
        }
        buf
    }

    /// Restores this device's parameter state from a shard produced by
    /// [`Self::save_state`]. Returns the Adam timestep to resume from.
    fn load_state(&mut self, blob: &[u8]) -> Result<i32> {
        use vp_tensor::io::{read_tensor, read_u32};
        let mut input = blob;
        let timestep = read_u32(&mut input)? as i32;
        let n = read_u32(&mut input)? as usize;
        let params = self.params_mut();
        if params.len() != n {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint shard has {n} parameters, device expects {}",
                params.len()
            )));
        }
        for p in params {
            let value = read_tensor(&mut input)?;
            let m = read_tensor(&mut input)?;
            let v = read_tensor(&mut input)?;
            if value.shape() != p.value().shape() {
                return Err(TensorError::InvalidArgument("checkpoint shard shape mismatch".into()));
            }
            *p = Param::from_state(value, m, v)?;
        }
        Ok(timestep)
    }
}

fn build_schedule(mode: Mode, family: ScheduleFamily, devices: usize, m: u32) -> Result<Schedule> {
    let times = PassTimes::default();
    let variant = match mode {
        Mode::Baseline => None,
        Mode::Vocab(VocabAlgo::Alg1) => Some(VocabVariant::Alg1),
        Mode::Vocab(VocabAlgo::Alg2) => Some(VocabVariant::Alg2),
        Mode::Vocab(VocabAlgo::Naive) => {
            return Err(TensorError::InvalidArgument(
                "the streamed runtime supports Algorithms 1 and 2; use vp-core's fused naive path"
                    .into(),
            ))
        }
    };
    Ok(match (family, variant) {
        (ScheduleFamily::OneFOneB, None) => generators::one_f_one_b(devices, m, times),
        (ScheduleFamily::OneFOneB, Some(v)) => generators::vocab_1f1b(devices, m, v, times, true),
        (ScheduleFamily::VHalf, None) => generators::vhalf(devices, m, times),
        (ScheduleFamily::VHalf, Some(v)) => generators::vhalf_vocab(devices, m, v, times, true),
    })
}

/// Trains the tiny model with 1F1B pipeline parallelism across `devices`
/// threads and returns the per-iteration mean loss. See
/// [`train_pipeline_with`] for schedule selection.
///
/// # Errors
///
/// As in [`train_pipeline_with`].
pub fn train_pipeline(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    iterations: usize,
) -> Result<Vec<f64>> {
    train_pipeline_with(config, devices, mode, ScheduleFamily::OneFOneB, iterations)
}

/// Trains the tiny model with pipeline parallelism under the chosen
/// schedule family and vocabulary placement, returning the per-iteration
/// mean loss. With identical `config`, the trajectory matches
/// [`crate::reference::train_reference`] up to `f32` accumulation-order
/// noise (the Appendix E claim) for every combination.
///
/// # Errors
///
/// Returns an error for invalid configurations (layer count not divisible
/// by the virtual stage count, unsupported mode) or if any shard fails
/// numerically.
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_with(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
) -> Result<Vec<f64>> {
    let corpus =
        DataSource::Synthetic(SyntheticCorpus::new(config.vocab, config.seq_len, config.seed));
    train_pipeline_on(config, devices, mode, family, iterations, &corpus)
}

/// Like [`train_pipeline_with`], with an explicit [`DataSource`] (e.g. a
/// BPE-tokenized corpus packed by `vp-data`). Every device reads the same
/// source, mirroring replicated data loaders.
///
/// # Errors
///
/// As in [`train_pipeline_with`].
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_pipeline_on(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    corpus: &DataSource,
) -> Result<Vec<f64>> {
    let endpoints = P2pNetwork::new(devices);
    let c1_comms = CollectiveGroup::new(devices);
    let results: Vec<Result<Vec<f64>>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (endpoint, comm) in endpoints.into_iter().zip(c1_comms) {
            let rank = endpoint.rank();
            let corpus = corpus.clone();
            joins.push(scope.spawn(move || {
                let select =
                    move |iter: u64, m: usize| -> Vec<Microbatch> { corpus.iteration(iter, m) };
                device_loop_dp(
                    config, devices, mode, family, iterations, rank, endpoint, comm, None, &select,
                )
            }));
        }
        joins.into_iter().map(|j| j.join().expect("device thread panicked")).collect()
    });
    let mut losses = Vec::new();
    for r in results {
        let device_losses = r?;
        if !device_losses.is_empty() {
            losses = device_losses;
        }
    }
    Ok(losses)
}

/// The per-device training loop, shared by the single-pipeline and
/// data-parallel entry points. Returns per-iteration mean losses on the
/// loss-reporting rank and an empty vector elsewhere.
///
/// `dp` carries the stage's gradient-sync collective and the replica count
/// when data parallelism is active; `select` yields this replica's
/// microbatches for an iteration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn device_loop_dp(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    rank: usize,
    endpoint: P2pEndpoint,
    c1: Collective,
    dp: Option<(Collective, usize)>,
    select: &dyn Fn(u64, usize) -> Vec<Microbatch>,
) -> Result<Vec<f64>> {
    device_loop_ckpt(
        config, devices, mode, family, iterations, rank, endpoint, c1, dp, select, None,
    )
    .map(|(losses, _)| losses)
}

/// [`device_loop_dp`] with distributed-checkpoint hooks: restores this
/// device's shard from `restore` (if provided, including the stream
/// offset) and returns the end-of-run shard alongside the losses.
#[allow(clippy::too_many_arguments)]
pub(crate) fn device_loop_ckpt(
    config: &TinyConfig,
    devices: usize,
    mode: Mode,
    family: ScheduleFamily,
    iterations: usize,
    rank: usize,
    endpoint: P2pEndpoint,
    c1: Collective,
    dp: Option<(Collective, usize)>,
    select: &dyn Fn(u64, usize) -> Vec<Microbatch>,
    restore: Option<(&[u8], u64)>,
) -> Result<(Vec<f64>, Vec<u8>)> {
    let chunks = family.chunks();
    let virtual_stages = devices * chunks as usize;
    if !config.layers.is_multiple_of(virtual_stages) {
        return Err(TensorError::InvalidArgument(format!(
            "{} layers not divisible by {} virtual stages",
            config.layers, virtual_stages
        )));
    }
    if config.tied && mode == Mode::Baseline {
        return Err(TensorError::InvalidArgument(
            "tied embeddings require Vocabulary Parallelism (the naive baseline would need a \
             cross-stage gradient synchronization — the very cost §6.1 removes)"
                .into(),
        ));
    }
    let schedule = build_schedule(mode, family, devices, config.microbatches as u32)?;
    vp_schedule::deps::validate(&schedule)
        .map_err(|e| TensorError::InvalidArgument(format!("schedule invalid: {e}")))?;
    let map = StageMap { devices, chunks, placement: schedule.placement() };
    let full = FullModel::build(config);
    let part = VocabPartition::new(config.vocab, devices);
    let loss_reporter_rank = match mode {
        Mode::Baseline => map.device_of(map.last_vs()).0,
        Mode::Vocab(_) => 0,
    };
    let first_dev = map.device_of(0).0;
    let last_dev = map.device_of(map.last_vs()).0;
    let per_stage = config.layers / virtual_stages;
    let blocks_by_chunk: Vec<Vec<TransformerBlock>> = (0..chunks)
        .map(|c| {
            let vs = map.vs_of(rank, c);
            full.blocks[vs * per_stage..(vs + 1) * per_stage].to_vec()
        })
        .collect();
    let mut device = Device {
        rank,
        mode,
        config: config.clone(),
        map,
        blocks_by_chunk,
        pos: (rank == first_dev).then(|| Param::new(full.pos_weight.clone())),
        full_input: (mode == Mode::Baseline && rank == first_dev)
            .then(|| Embedding::from_weight(full.input_weight.clone())),
        full_output: (mode == Mode::Baseline && rank == last_dev)
            .then(|| Param::new(full.output_weight.clone())),
        input_shard: (matches!(mode, Mode::Vocab(_)) && !config.tied)
            .then(|| InputShard::from_full(&full.input_weight, part, rank))
            .transpose()?,
        output_shard: (matches!(mode, Mode::Vocab(_)) && !config.tied)
            .then(|| OutputShard::from_full(&full.output_weight, part, rank))
            .transpose()?,
        tied_shard: (matches!(mode, Mode::Vocab(_)) && config.tied)
            .then(|| TiedShard::from_full(&full.output_weight, part, rank))
            .transpose()?,
        p2p: endpoint,
        c1_comm: Arc::new(c1),
        c1_stream: CommStream::new(),
        caches: HashMap::new(),
        states: HashMap::new(),
        losses: Vec::new(),
    };
    let mut adam = Adam::new(config.lr);
    let mut start_iter = 0u64;
    if let Some((blob, done)) = restore {
        let timestep = device.load_state(blob)?;
        adam.set_timestep(timestep);
        start_iter = done;
    }
    let mut iteration_losses = Vec::with_capacity(iterations);
    let trace = std::env::var_os("VP_RUNTIME_TRACE").is_some();
    let replicas = dp.as_ref().map(|(_, n)| *n).unwrap_or(1);
    for iter in start_iter..start_iter + iterations as u64 {
        let mbs = select(iter as u64, config.microbatches);
        for pass in schedule.passes(rank) {
            if trace {
                eprintln!("[iter {iter}] rank {rank}: {pass}");
            }
            device.run_pass(pass.kind, pass.microbatch, pass.chunk, &mbs[pass.microbatch as usize])?;
        }
        // Wait for deferred barriers still in flight before touching
        // gradients or weights.
        device.c1_stream.synchronize();
        if let Some((dp_comm, _)) = &dp {
            device.sync_grads(dp_comm)?;
        }
        device.optimizer_step(&mut adam)?;
        if device.rank == loss_reporter_rank {
            let mut total: f64 = device.losses.drain(..).sum();
            if let Some((dp_comm, _)) = &dp {
                // Sum the replicas' loss contributions (all reporter-stage
                // devices participate, in the same position of the group's
                // op sequence).
                let mut buf = [total as f32];
                dp_comm
                    .all_reduce(&mut buf, vp_collectives::ReduceOp::Sum)
                    .map_err(|e| TensorError::InvalidArgument(format!("loss sync failed: {e}")))?;
                total = buf[0] as f64;
            }
            iteration_losses.push(total / (config.microbatches * replicas) as f64);
        } else {
            device.losses.clear();
        }
        device.states.clear();
        device.caches.clear();
    }
    let blob = device.save_state(adam.timestep());
    if rank == loss_reporter_rank {
        Ok((iteration_losses, blob))
    } else {
        Ok((Vec::new(), blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::train_reference;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs()),
                "iteration {i}: {x} vs {y} (full: {a:?} vs {b:?})"
            );
        }
    }

    #[test]
    fn baseline_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 2, Mode::Baseline, 6).unwrap();
        assert_close(&reference, &pipeline, 1e-4);
    }

    #[test]
    fn vocab_alg1_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg1), 6).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vocab_alg2_pipeline_matches_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let pipeline = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 6).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vocab_modes_agree_with_each_other() {
        let config = TinyConfig::default();
        let a1 = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Alg1), 5).unwrap();
        let a2 = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Alg2), 5).unwrap();
        assert_close(&a1, &a2, 1e-3);
    }

    #[test]
    fn loss_decreases_under_pipeline_training() {
        let config = TinyConfig::default();
        let losses = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 10).unwrap();
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn vhalf_baseline_matches_reference() {
        // 2 devices × 2 chunks = 4 virtual stages of 1 layer each.
        let config = TinyConfig::default();
        let reference = train_reference(&config, 5).unwrap();
        let pipeline =
            train_pipeline_with(&config, 2, Mode::Baseline, ScheduleFamily::VHalf, 5).unwrap();
        assert_close(&reference, &pipeline, 1e-3);
    }

    #[test]
    fn vhalf_vocab_matches_reference() {
        // The paper's §6.4 configuration in miniature: V-Half + Vocab-1/2.
        let config = TinyConfig { layers: 8, ..TinyConfig::default() };
        let reference = train_reference(&config, 5).unwrap();
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let pipeline =
                train_pipeline_with(&config, 4, Mode::Vocab(algo), ScheduleFamily::VHalf, 5)
                    .unwrap();
            assert_close(&reference, &pipeline, 1e-3);
        }
    }

    #[test]
    fn tied_pipeline_matches_tied_reference() {
        let config = TinyConfig { tied: true, ..TinyConfig::default() };
        let reference = train_reference(&config, 6).unwrap();
        for algo in [VocabAlgo::Alg1, VocabAlgo::Alg2] {
            let pipeline = train_pipeline(&config, 4, Mode::Vocab(algo), 6).unwrap();
            assert_close(&reference, &pipeline, 1e-3);
        }
    }

    #[test]
    fn tied_baseline_is_rejected() {
        let config = TinyConfig { tied: true, ..TinyConfig::default() };
        let err = train_pipeline(&config, 2, Mode::Baseline, 1).unwrap_err();
        assert!(err.to_string().contains("tied"));
    }

    #[test]
    fn indivisible_layers_are_rejected() {
        let config = TinyConfig::default();
        assert!(train_pipeline(&config, 3, Mode::Baseline, 1).is_err());
        // V-Half needs divisibility by 2·devices.
        assert!(train_pipeline_with(
            &TinyConfig { layers: 6, ..TinyConfig::default() },
            2,
            Mode::Baseline,
            ScheduleFamily::VHalf,
            1
        )
        .is_err());
    }

    #[test]
    fn pipelined_training_is_deterministic_across_runs() {
        // Thread scheduling varies between runs, but the pass order and
        // every floating-point reduction order are fixed by the schedule,
        // so two runs must agree bit for bit.
        let config = TinyConfig::default();
        let a = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 4).unwrap();
        let b = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn naive_mode_is_rejected_with_guidance() {
        let config = TinyConfig::default();
        let err = train_pipeline(&config, 2, Mode::Vocab(VocabAlgo::Naive), 1).unwrap_err();
        assert!(err.to_string().contains("naive"));
    }
}
