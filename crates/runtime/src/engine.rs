//! The generic schedule interpreter (pass-VM): one thread per device walks
//! its `vp_schedule::pass::Schedule` pass list in order and dispatches
//! purely on [`PassKind`] — `F`/`B`/`W` transformer passes here, the
//! vocabulary `S`/`T` and sharded input passes in `crate::vocab`. The
//! engine contains **no** schedule-family special cases: any validated
//! schedule whose kind maps to a supported [`Mode`] (plain → baseline,
//! Vocab-1/2 → Vocabulary Parallelism) executes numerically, which is how
//! the zero-bubble and interleaved extensions train without new runtime
//! code.
//!
//! [`train_schedule`] is the metrics-out entry point: it returns the loss
//! trajectory together with a real-timing
//! [`ExecReport`] (wall-clock pass spans of
//! the final iteration plus observed activation peaks), so the simulator's
//! Chrome-trace export and [`ScheduleAnalysis`] work unchanged on measured
//! data.

use crate::comm::{
    from_packet, stage_tag, to_packet, StageMap, TAG_ACT, TAG_C0, TAG_C2, TAG_GRAD, TAG_INGRAD,
};
use crate::data::{DataSource, Microbatch};
use crate::model::{FullModel, TinyConfig};
use crate::reference::{backward_blocks, forward_blocks};
use crate::state::{ActivationStore, MbState, WGradStash};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vp_collectives::{Collective, CollectiveGroup, CommStream, P2pEndpoint, P2pNetwork};
use vp_core::output::OutputShard;
use vp_core::{InputShard, TiedShard, VocabAlgo};
use vp_model::block::TransformerBlock;
use vp_model::partition::VocabPartition;
use vp_model::tp::{TpBlockCache, TpPartition, TpReduce, TpTransformerBlock};
use vp_model::TpSyncStyle;
use vp_schedule::analysis::ScheduleAnalysis;
use vp_schedule::exec::ExecReport;
use vp_schedule::pass::{PassKind, Schedule, ScheduleKind, VocabVariant};
use vp_schedule::trace::to_chrome_trace;
use vp_tensor::nn::{softmax_cross_entropy, Embedding};
use vp_tensor::optim::{Adam, Optimizer, Param};
use vp_tensor::{Result, Tensor, TensorError};
use vp_trace::{TraceLog, Tracer, Track};

/// How the vocabulary layers are placed and executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Megatron-style: full input layer with the first virtual stage, full
    /// output layer with the last (in V-Half, both on device 0).
    Baseline,
    /// Vocabulary Parallelism with Algorithm 1 or 2 (the naive 3-barrier
    /// grouping is only supported by the fused verification path in
    /// `vp-core`, not by the streamed runtime).
    Vocab(VocabAlgo),
}

/// Derives the runtime [`Mode`] from a schedule's kind — the single point
/// where schedule families meet the numerics.
///
/// # Errors
///
/// Returns an error for kinds the streamed runtime does not execute (the
/// naive 3-barrier grouping and the interlaced TP-style baseline).
pub fn mode_of_schedule(schedule: &Schedule) -> Result<Mode> {
    match schedule.kind() {
        ScheduleKind::Plain => Ok(Mode::Baseline),
        ScheduleKind::Vocab(VocabVariant::Alg1) => Ok(Mode::Vocab(VocabAlgo::Alg1)),
        ScheduleKind::Vocab(VocabVariant::Alg2) => Ok(Mode::Vocab(VocabAlgo::Alg2)),
        ScheduleKind::Vocab(VocabVariant::Naive) => Err(TensorError::InvalidArgument(
            "the streamed runtime supports Algorithms 1 and 2; use vp-core's fused naive path"
                .into(),
        )),
        ScheduleKind::Interlaced => Err(TensorError::InvalidArgument(
            "interlaced schedules run synchronous TP-style vocabulary layers; the runtime \
             executes pipeline schedules (plain or vocabulary-parallel)"
                .into(),
        )),
    }
}

/// Validates a `(config, schedule)` pair for numeric execution and returns
/// the derived [`Mode`]: the schedule must pass the §5.1 dependency
/// validation, its microbatch count must match the config, the layer count
/// must split evenly over the virtual stages, and tied embeddings require
/// Vocabulary Parallelism.
pub(crate) fn check_schedule(config: &TinyConfig, schedule: &Schedule) -> Result<Mode> {
    let mode = mode_of_schedule(schedule)?;
    let virtual_stages = schedule.virtual_stages();
    if !config.layers.is_multiple_of(virtual_stages) {
        return Err(TensorError::InvalidArgument(format!(
            "{} layers not divisible by {} virtual stages",
            config.layers, virtual_stages
        )));
    }
    if schedule.num_microbatches() as usize != config.microbatches {
        return Err(TensorError::InvalidArgument(format!(
            "schedule runs {} microbatches, config expects {}",
            schedule.num_microbatches(),
            config.microbatches
        )));
    }
    if config.tied && mode == Mode::Baseline {
        return Err(TensorError::InvalidArgument(
            "tied embeddings require Vocabulary Parallelism (the naive baseline would need a \
             cross-stage gradient synchronization — the very cost §6.1 removes)"
                .into(),
        ));
    }
    vp_schedule::deps::validate(schedule)
        .map_err(|e| TensorError::InvalidArgument(format!("schedule invalid: {e}")))?;
    Ok(mode)
}

/// Tensor-parallel execution context of one device thread: its position on
/// the grid's TP axis and the row communicator the sharded blocks
/// rendezvous in. [`TpEnv::solo`] is the degenerate 1D context every
/// pre-grid entry point runs with — `tp == 1`, no communicator, and every
/// code path bitwise identical to the flat pipeline.
pub(crate) struct TpEnv {
    /// TP width (grid-row size); 1 on flat pipelines.
    pub(crate) tp: usize,
    /// This device's rank on the TP axis.
    pub(crate) tp_rank: usize,
    /// Row communicator (`None` exactly when `tp == 1`).
    pub(crate) comm: Option<Arc<Collective>>,
    /// How the Megatron `f`/`g` conjugate pair is realized: one all-reduce,
    /// or the PSA reduce-scatter + all-gather decomposition.
    pub(crate) sync: TpSyncStyle,
}

impl TpEnv {
    /// The flat-pipeline context: a one-entry row with no communicator.
    pub(crate) fn solo() -> Self {
        TpEnv {
            tp: 1,
            tp_rank: 0,
            comm: None,
            sync: TpSyncStyle::AllReduce,
        }
    }

    /// Whether transformer blocks are TP-sharded on this device.
    pub(crate) fn active(&self) -> bool {
        self.tp > 1
    }
}

/// Applies the TP cross-rank reduction to a partial block output: a plain
/// sum all-reduce (Megatron's `g` collective), or reduce-scatter followed
/// by all-gather (the PSA decomposition). Both sum the ranks' contributions
/// in rank order, so the two styles are bitwise identical here — which the
/// grid tests pin.
fn tp_reduce(comm: &Collective, sync: TpSyncStyle, t: &mut Tensor) -> Result<()> {
    match sync {
        TpSyncStyle::AllReduce => comm
            .all_reduce(t.data_mut(), vp_collectives::ReduceOp::Sum)
            .map_err(|e| TensorError::InvalidArgument(format!("tp all-reduce failed: {e}"))),
        TpSyncStyle::Psa => {
            let shard = comm
                .reduce_scatter(t.data(), vp_collectives::ReduceOp::Sum)
                .map_err(|e| {
                    TensorError::InvalidArgument(format!("tp reduce-scatter failed: {e}"))
                })?;
            let parts = comm.all_gather(&shard);
            let data = t.data_mut();
            let mut at = 0;
            for part in parts {
                data[at..at + part.len()].copy_from_slice(&part);
                at += part.len();
            }
            debug_assert_eq!(at, data.len(), "gathered shards must tile the tensor");
            Ok(())
        }
    }
}

/// Forward through a slice of TP-sharded blocks, collecting caches (the
/// sharded analogue of [`forward_blocks`]).
fn forward_tp_blocks(
    blocks: &[TpTransformerBlock],
    x: &Tensor,
    reduce: &mut TpReduce<'_>,
) -> Result<(Tensor, Vec<TpBlockCache>)> {
    let mut h = x.clone();
    let mut caches = Vec::with_capacity(blocks.len());
    for block in blocks {
        let (next, cache) = block.forward(&h, reduce)?;
        h = next;
        caches.push(cache);
    }
    Ok((h, caches))
}

/// Backward through a slice of TP-sharded blocks in reverse order (the
/// sharded analogue of [`backward_blocks`]).
fn backward_tp_blocks(
    blocks: &mut [TpTransformerBlock],
    caches: &[TpBlockCache],
    dy: &Tensor,
    reduce: &mut TpReduce<'_>,
) -> Result<Tensor> {
    let mut grad = dy.clone();
    for (block, cache) in blocks.iter_mut().rev().zip(caches.iter().rev()) {
        grad = block.backward(cache, &grad, reduce)?;
    }
    Ok(grad)
}

/// The rank whose per-microbatch losses form the reported trajectory:
/// the last virtual stage's host in baseline mode (it computes the loss),
/// rank 0 in vocab mode (every rank sees the all-reduced loss; one
/// reports).
pub(crate) fn loss_reporter_rank(mode: Mode, map: &StageMap) -> usize {
    match mode {
        Mode::Baseline => map.device_of(map.last_vs()).0,
        Mode::Vocab(_) => 0,
    }
}

/// One pipeline device of the interpreter: the model slices it hosts, its
/// communication endpoints and the per-microbatch stores the passes flow
/// through. Fields are `pub(crate)` so the vocabulary pass handlers in
/// [`crate::vocab`] share the state without accessors.
pub(crate) struct Device {
    pub(crate) rank: usize,
    pub(crate) mode: Mode,
    pub(crate) config: TinyConfig,
    pub(crate) map: StageMap,
    /// Transformer blocks per chunk hosted by this device (empty when the
    /// blocks are TP-sharded).
    pub(crate) blocks_by_chunk: Vec<Vec<TransformerBlock>>,
    /// TP-sharded transformer blocks per chunk (empty when `tp == 1`).
    pub(crate) tp_blocks_by_chunk: Vec<Vec<TpTransformerBlock>>,
    /// Tensor-parallel context: grid-row position and communicator.
    pub(crate) tp: TpEnv,
    /// Whether this device's pass list splits `B`/`W` zero-bubble style.
    pub(crate) has_w: bool,
    pub(crate) pos: Option<Param>,
    pub(crate) full_input: Option<Embedding>,
    pub(crate) full_output: Option<Param>,
    pub(crate) input_shard: Option<InputShard>,
    pub(crate) output_shard: Option<OutputShard>,
    /// Tied-embedding shard (§6.1): replaces both `input_shard` and
    /// `output_shard` when `config.tied` is set.
    pub(crate) tied_shard: Option<TiedShard>,
    pub(crate) p2p: P2pEndpoint,
    pub(crate) c1_comm: Arc<Collective>,
    pub(crate) c1_stream: CommStream,
    /// Resident block-activation caches per (microbatch, chunk).
    pub(crate) acts: ActivationStore,
    /// Resident TP-sharded caches (the sharded analogue of `acts`).
    pub(crate) tp_acts: ActivationStore<TpBlockCache>,
    /// Deferred weight gradients between `B` and `W`.
    pub(crate) w_stash: WGradStash,
    pub(crate) states: HashMap<u32, MbState>,
    pub(crate) losses: Vec<f64>,
}

impl Device {
    pub(crate) fn state(&mut self, k: u32) -> &mut MbState {
        self.states.entry(k).or_default()
    }

    pub(crate) fn algo(&self) -> VocabAlgo {
        match self.mode {
            Mode::Vocab(a) => a,
            Mode::Baseline => VocabAlgo::Alg1,
        }
    }

    pub(crate) fn c0_root(&self) -> usize {
        self.map.device_of(self.map.last_vs()).0
    }

    /// Translates a pipeline rank into the global p2p address of that
    /// stage's device in *this device's* TP column — stage-boundary and
    /// vocabulary traffic never crosses columns. The identity on flat
    /// pipelines (`tp == 1`).
    pub(crate) fn peer(&self, pp_rank: usize) -> usize {
        pp_rank * self.tp.tp + self.tp.tp_rank
    }

    pub(crate) fn recv(&mut self, src: usize, tag: u64) -> Result<Tensor> {
        let src = self.peer(src);
        let packet = self
            .p2p
            .recv_tag(src, tag)
            .map_err(|e| TensorError::InvalidArgument(format!("p2p recv failed: {e}")))?;
        Ok(from_packet(&packet))
    }

    pub(crate) fn send(&self, dst: usize, tag: u64, t: &Tensor) -> Result<()> {
        let dst = self.peer(dst);
        self.p2p
            .send(dst, to_packet(tag, t))
            .map_err(|e| TensorError::InvalidArgument(format!("p2p send failed: {e}")))
    }

    /// The interpreter's instruction dispatch: every pass kind a validated
    /// pipeline schedule can contain maps to one handler, with no
    /// schedule-family cases.
    pub(crate) fn run_pass(
        &mut self,
        kind: PassKind,
        k: u32,
        chunk: u8,
        mb: &Microbatch,
    ) -> Result<()> {
        match kind {
            PassKind::InputF => self.input_f(k, mb),
            PassKind::F => self.forward(k, chunk, mb),
            PassKind::S => self.s_pass(k, mb),
            PassKind::T => self.t_pass(k),
            PassKind::B => self.backward(k, chunk, mb),
            PassKind::W => self.w_pass(k, chunk),
            PassKind::InputB => self.input_b(k, mb),
            PassKind::S2 | PassKind::OutputF | PassKind::OutputB => Err(
                TensorError::InvalidArgument(format!("runtime does not execute {kind:?} passes")),
            ),
        }
    }

    fn forward(&mut self, k: u32, chunk: u8, mb: &Microbatch) -> Result<()> {
        let vs = self.map.vs_of(self.rank, chunk);
        let x0 = if vs == 0 {
            self.embed_input(k, mb)?
        } else {
            let (src, _) = self.map.device_of(vs - 1);
            self.recv(src, stage_tag(TAG_ACT, vs, k))?
        };
        let h = if self.tp.active() {
            let comm = Arc::clone(
                self.tp
                    .comm
                    .as_ref()
                    .expect("tp > 1 has a row communicator"),
            );
            let sync = self.tp.sync;
            let mut reduce = |t: &mut Tensor| tp_reduce(&comm, sync, t);
            let (h, caches) =
                forward_tp_blocks(&self.tp_blocks_by_chunk[chunk as usize], &x0, &mut reduce)?;
            self.tp_acts.insert(k, chunk, caches);
            h
        } else {
            let (h, caches) = forward_blocks(&self.blocks_by_chunk[chunk as usize], &x0)?;
            self.acts.insert(k, chunk, caches);
            h
        };
        if vs < self.map.last_vs() {
            let (dst, _) = self.map.device_of(vs + 1);
            self.send(dst, stage_tag(TAG_ACT, vs + 1, k), &h)?;
        } else {
            match self.mode {
                Mode::Baseline => {
                    let w = self
                        .full_output
                        .as_ref()
                        .expect("baseline hosts the output layer");
                    let logits = h.matmul_nt(w.value())?;
                    let (out, grad) = softmax_cross_entropy(&logits, &mb.labels)?;
                    self.losses.push(out.loss);
                    let st = self.state(k);
                    st.h_last = Some(h);
                    st.out_grad = Some(grad);
                }
                Mode::Vocab(_) => {
                    // C0: fan the last transformer output out to every
                    // vocabulary shard (including ourselves).
                    for dst in 0..self.map.devices {
                        self.send(dst, TAG_C0 | k as u64, &h)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn backward(&mut self, k: u32, chunk: u8, mb: &Microbatch) -> Result<()> {
        let vs = self.map.vs_of(self.rank, chunk);
        let dy = if vs == self.map.last_vs() {
            match self.mode {
                Mode::Baseline => {
                    let st = self.states.get_mut(&k).expect("B after F");
                    let grad = st
                        .out_grad
                        .take()
                        .expect("last stage stored the loss gradient");
                    let h = st.h_last.take().expect("last stage stored its output");
                    let w = self.full_output.as_mut().expect("baseline output layer");
                    let dw = grad.dlogits.matmul_tn(&h)?;
                    w.accumulate(&dw)?;
                    grad.dlogits.matmul(w.value())?
                }
                Mode::Vocab(VocabAlgo::Alg2) => self
                    .states
                    .get_mut(&k)
                    .expect("B after S")
                    .barrier
                    .take_dx()?,
                Mode::Vocab(VocabAlgo::Alg1) => {
                    // C2: sum the p partial ∇X contributions.
                    let mut acc = Tensor::zeros(mb.labels.len(), self.config.hidden);
                    for src in 0..self.map.devices {
                        let part = self.recv(src, TAG_C2 | k as u64)?;
                        acc.add_assign(&part)?;
                    }
                    acc
                }
                Mode::Vocab(VocabAlgo::Naive) => unreachable!("rejected at construction"),
            }
        } else {
            let (src, _) = self.map.device_of(vs + 1);
            self.recv(src, stage_tag(TAG_GRAD, vs, k))?
        };
        let dx0 = if self.tp.active() {
            let caches = self.tp_acts.remove(k, chunk).expect("F stored caches");
            let comm = Arc::clone(
                self.tp
                    .comm
                    .as_ref()
                    .expect("tp > 1 has a row communicator"),
            );
            let sync = self.tp.sync;
            let mut reduce = |t: &mut Tensor| tp_reduce(&comm, sync, t);
            if self.has_w {
                // Zero-bubble split, TP-sharded: the shadow backward still
                // enters the row's f-conjugate collectives (every row peer
                // runs the same pass list, so the rendezvous stays aligned);
                // only the weight-gradient fold is deferred.
                let mut shadow = self.tp_blocks_by_chunk[chunk as usize].clone();
                for block in &mut shadow {
                    for p in block.params_mut() {
                        p.zero_grad();
                    }
                }
                let dx0 = backward_tp_blocks(&mut shadow, &caches, &dy, &mut reduce)?;
                let grads: Vec<Tensor> = shadow
                    .iter_mut()
                    .flat_map(|b| b.params_mut().into_iter().map(|p| p.grad().clone()))
                    .collect();
                self.w_stash.insert(k, chunk, grads);
                dx0
            } else {
                backward_tp_blocks(
                    &mut self.tp_blocks_by_chunk[chunk as usize],
                    &caches,
                    &dy,
                    &mut reduce,
                )?
            }
        } else {
            let caches = self.acts.remove(k, chunk).expect("F stored caches");
            if self.has_w {
                // Zero-bubble split: compute ∇X on a gradient-free clone and
                // stash its weight gradients for the deferred W pass.
                let mut shadow = self.blocks_by_chunk[chunk as usize].clone();
                for block in &mut shadow {
                    for p in block.params_mut() {
                        p.zero_grad();
                    }
                }
                let dx0 = backward_blocks(&mut shadow, &caches, &dy)?;
                let grads: Vec<Tensor> = shadow
                    .iter_mut()
                    .flat_map(|b| b.params_mut().into_iter().map(|p| p.grad().clone()))
                    .collect();
                self.w_stash.insert(k, chunk, grads);
                dx0
            } else {
                backward_blocks(&mut self.blocks_by_chunk[chunk as usize], &caches, &dy)?
            }
        };
        if vs > 0 {
            let (dst, _) = self.map.device_of(vs - 1);
            self.send(dst, stage_tag(TAG_GRAD, vs - 1, k), &dx0)?;
        } else {
            self.pos
                .as_mut()
                .expect("first-stage device owns pos")
                .accumulate(&dx0)?;
            match self.mode {
                Mode::Baseline => {
                    let cache = self
                        .states
                        .get_mut(&k)
                        .expect("B after F")
                        .emb_cache
                        .take()
                        .expect("F cached ids");
                    self.full_input
                        .as_mut()
                        .expect("baseline input layer")
                        .backward(&cache, &dx0)?;
                }
                Mode::Vocab(_) => {
                    // Broadcast the embedding gradient to every input shard.
                    for dst in 0..self.map.devices {
                        self.send(dst, TAG_INGRAD | k as u64, &dx0)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Deferred weight-gradient pass (zero-bubble `W`): folds the stash
    /// produced by the matching `B` into the real parameters, in the same
    /// deterministic parameter order.
    fn w_pass(&mut self, k: u32, chunk: u8) -> Result<()> {
        let grads = self
            .w_stash
            .remove(k, chunk)
            .expect("B stashed the weight gradients");
        let mut it = grads.iter();
        if self.tp.active() {
            for block in &mut self.tp_blocks_by_chunk[chunk as usize] {
                for p in block.params_mut() {
                    let g = it
                        .next()
                        .expect("stash matches the chunk's parameter count");
                    p.accumulate(g)?;
                }
            }
        } else {
            for block in &mut self.blocks_by_chunk[chunk as usize] {
                for p in block.params_mut() {
                    let g = it
                        .next()
                        .expect("stash matches the chunk's parameter count");
                    p.accumulate(g)?;
                }
            }
        }
        debug_assert!(
            it.next().is_none(),
            "stash matches the chunk's parameter count"
        );
        Ok(())
    }

    /// All trainable parameters on this device, in a deterministic order
    /// (shared by the optimizer step and data-parallel gradient sync).
    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params: Vec<&mut Param> = Vec::new();
        for blocks in &mut self.blocks_by_chunk {
            for block in blocks {
                params.extend(block.params_mut());
            }
        }
        for blocks in &mut self.tp_blocks_by_chunk {
            for block in blocks {
                params.extend(block.params_mut());
            }
        }
        if let Some(p) = &mut self.pos {
            params.push(p);
        }
        if let Some(e) = &mut self.full_input {
            params.extend(e.params_mut());
        }
        if let Some(w) = &mut self.full_output {
            params.push(w);
        }
        if let Some(s) = &mut self.input_shard {
            params.push(s.weight_mut());
        }
        if let Some(s) = &mut self.output_shard {
            params.push(s.weight_mut());
        }
        if let Some(s) = &mut self.tied_shard {
            params.push(s.weight_mut());
        }
        params
    }

    /// Data-parallel gradient synchronization: sum-all-reduce every
    /// parameter gradient across this stage's replicas.
    fn sync_grads(&mut self, comm: &Collective) -> Result<()> {
        for p in self.params_mut() {
            comm.all_reduce(p.grad_mut().data_mut(), vp_collectives::ReduceOp::Sum)
                .map_err(|e| TensorError::InvalidArgument(format!("gradient sync failed: {e}")))?;
        }
        Ok(())
    }

    fn optimizer_step(&mut self, adam: &mut Adam) -> Result<()> {
        for p in self.params_mut() {
            adam.step(p)?;
        }
        adam.next_iteration();
        Ok(())
    }

    /// Serializes this device's parameter state (values + Adam moments) in
    /// the deterministic `params_mut` order — one shard of a distributed
    /// checkpoint.
    fn save_state(&mut self, adam_timestep: i32) -> Vec<u8> {
        use vp_tensor::io::{write_tensor, write_u32};
        let mut buf = Vec::new();
        write_u32(&mut buf, adam_timestep as u32);
        let params = self.params_mut();
        write_u32(&mut buf, params.len() as u32);
        for p in params {
            write_tensor(&mut buf, p.value());
            let (m, v) = p.moments();
            write_tensor(&mut buf, m);
            write_tensor(&mut buf, v);
        }
        buf
    }

    /// Restores this device's parameter state from a shard produced by
    /// [`Self::save_state`]. Returns the Adam timestep to resume from.
    fn load_state(&mut self, blob: &[u8]) -> Result<i32> {
        use vp_tensor::io::{read_tensor, read_u32};
        let mut input = blob;
        let timestep = read_u32(&mut input)? as i32;
        let n = read_u32(&mut input)? as usize;
        let params = self.params_mut();
        if params.len() != n {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint shard has {n} parameters, device expects {}",
                params.len()
            )));
        }
        for p in params {
            let value = read_tensor(&mut input)?;
            let m = read_tensor(&mut input)?;
            let v = read_tensor(&mut input)?;
            if value.shape() != p.value().shape() {
                return Err(TensorError::InvalidArgument(
                    "checkpoint shard shape mismatch".into(),
                ));
            }
            *p = Param::from_state(value, m, v)?;
        }
        Ok(timestep)
    }
}

/// What one device thread hands back: its loss trajectory (empty off the
/// reporter rank), checkpoint shard, the wall-clock span of every pass in
/// the final iteration, and the observed activation peak.
pub(crate) struct DeviceOutcome {
    pub(crate) losses: Vec<f64>,
    pub(crate) shard: Vec<u8>,
    /// Per-pass `(start, end)` wall-clock seconds relative to the shared
    /// epoch, indexed like `schedule.passes(rank)` (final iteration).
    pub(crate) spans: Vec<(f64, f64)>,
    /// Per-iteration `(start, end)` wall-clock seconds relative to the
    /// shared epoch — the pass loop plus gradient sync, optimizer step and
    /// buffer recycling, one entry per executed iteration.
    pub(crate) iter_spans: Vec<(f64, f64)>,
    /// Peak simultaneously-resident microbatch-chunk activations.
    pub(crate) peak_resident: usize,
}

/// The per-device interpreter loop, shared by every entry point
/// (single-pipeline, data-parallel, checkpointed). Walks the validated
/// schedule's pass list for `rank`, dispatching on [`PassKind`] only.
///
/// `dp` carries the stage's gradient-sync collective and the replica count
/// when data parallelism is active; `select` yields this replica's
/// microbatches for an iteration; `restore` resumes from a checkpoint
/// shard; `epoch` anchors the wall-clock pass spans across devices.
///
/// `tracer` is this device's measured-run recording handle
/// ([`Tracer::off`] when the caller wants no trace): the loop disarms it
/// for warm-up iterations and arms it for the final one, so a trace
/// captures exactly one steady iteration — the same slice of the run the
/// `spans` report covers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn device_loop(
    config: &TinyConfig,
    schedule: &Schedule,
    iterations: usize,
    rank: usize,
    endpoint: P2pEndpoint,
    c1: Collective,
    tp_env: TpEnv,
    dp: Option<&(Collective, usize)>,
    select: &dyn Fn(u64, usize) -> Vec<Microbatch>,
    restore: Option<(&[u8], u64)>,
    tracer: &Tracer,
    epoch: Instant,
) -> Result<DeviceOutcome> {
    let mode = check_schedule(config, schedule)?;
    let chunks = schedule.chunks();
    let virtual_stages = schedule.virtual_stages();
    let map = StageMap {
        devices: schedule.devices(),
        chunks,
        placement: schedule.placement(),
    };
    let full = FullModel::build(config);
    let part = VocabPartition::new(config.vocab, map.devices);
    let reporter = loss_reporter_rank(mode, &map);
    let first_dev = map.device_of(0).0;
    let last_dev = map.device_of(map.last_vs()).0;
    let per_stage = config.layers / virtual_stages;
    let blocks_by_chunk: Vec<Vec<TransformerBlock>> = (0..chunks)
        .map(|c| {
            let vs = map.vs_of(rank, c);
            full.blocks[vs * per_stage..(vs + 1) * per_stage].to_vec()
        })
        .collect();
    // On a grid, slice each full block into this device's TP shard and
    // drop the full copies: the sharded set *replaces* the full set, so a
    // device holds 1/tp of the matmul weights (plus the replicated
    // LayerNorms and biases), exactly as the §5.2 grid estimator counts.
    let (blocks_by_chunk, tp_blocks_by_chunk) = if tp_env.active() {
        let part = TpPartition::new(
            tp_env.tp,
            tp_env.tp_rank,
            config.heads,
            config.hidden,
            config.hidden * config.ffn_mult,
        );
        let sharded = blocks_by_chunk
            .iter()
            .map(|blocks| {
                blocks
                    .iter()
                    .map(|b| TpTransformerBlock::from_full(b, &part))
                    .collect()
            })
            .collect();
        (vec![Vec::new(); chunks as usize], sharded)
    } else {
        (blocks_by_chunk, Vec::new())
    };
    // The device thread, its p2p endpoint and its communication stream all
    // write the same per-device timeline: blocking receives show up as
    // comm-wait spans, overlapped barrier jobs as comm-stream spans.
    let mut endpoint = endpoint;
    endpoint.set_tracer(tracer.clone());
    let mut c1_stream = CommStream::new();
    c1_stream.set_tracer(tracer.clone());
    let mut device = Device {
        rank,
        mode,
        config: config.clone(),
        map,
        blocks_by_chunk,
        tp_blocks_by_chunk,
        tp: tp_env,
        has_w: schedule.count_kind(rank, PassKind::W) > 0,
        pos: (rank == first_dev).then(|| Param::new(full.pos_weight.clone())),
        full_input: (mode == Mode::Baseline && rank == first_dev)
            .then(|| Embedding::from_weight(full.input_weight.clone())),
        full_output: (mode == Mode::Baseline && rank == last_dev)
            .then(|| Param::new(full.output_weight.clone())),
        input_shard: (matches!(mode, Mode::Vocab(_)) && !config.tied)
            .then(|| InputShard::from_full(&full.input_weight, part, rank))
            .transpose()?,
        output_shard: (matches!(mode, Mode::Vocab(_)) && !config.tied)
            .then(|| OutputShard::from_full(&full.output_weight, part, rank))
            .transpose()?,
        tied_shard: (matches!(mode, Mode::Vocab(_)) && config.tied)
            .then(|| TiedShard::from_full(&full.output_weight, part, rank))
            .transpose()?,
        p2p: endpoint,
        c1_comm: Arc::new(c1),
        c1_stream,
        acts: ActivationStore::default(),
        tp_acts: ActivationStore::default(),
        w_stash: WGradStash::default(),
        states: HashMap::new(),
        losses: Vec::new(),
    };
    let mut adam = Adam::new(config.lr);
    let mut start_iter = 0u64;
    if let Some((blob, done)) = restore {
        let timestep = device.load_state(blob)?;
        adam.set_timestep(timestep);
        start_iter = done;
    }
    let mut iteration_losses = Vec::with_capacity(iterations);
    let mut spans = vec![(0.0, 0.0); schedule.passes(rank).len()];
    let mut iter_spans = Vec::with_capacity(iterations);
    let trace = std::env::var_os("VP_RUNTIME_TRACE").is_some();
    let replicas = dp.map(|(_, n)| *n).unwrap_or(1);
    for iter in start_iter..start_iter + iterations as u64 {
        // Warm-up iterations are disarmed; the trace captures the final
        // (steady-state) iteration, matching the `spans` report below.
        if iter + 1 == start_iter + iterations as u64 {
            tracer.arm();
        } else {
            tracer.disarm();
        }
        let it0 = epoch.elapsed().as_secs_f64();
        let mbs = select(iter, config.microbatches);
        for (i, pass) in schedule.passes(rank).iter().enumerate() {
            if trace {
                eprintln!("[iter {iter}] rank {rank}: {pass}");
            }
            // Spans include any blocking wait on upstream data, so the
            // measured report shows communication-inclusive pass times
            // (bubbles appear as stretched passes, not gaps). The tracer's
            // comm-wait track separates the wait out again.
            let pass_span = tracer.span(
                Track::Compute,
                pass.kind.name(),
                pass.microbatch,
                pass.chunk,
            );
            let t0 = epoch.elapsed().as_secs_f64();
            device.run_pass(
                pass.kind,
                pass.microbatch,
                pass.chunk,
                &mbs[pass.microbatch as usize],
            )?;
            spans[i] = (t0, epoch.elapsed().as_secs_f64());
            pass_span.end();
        }
        // Wait for deferred barriers still in flight before touching
        // gradients or weights.
        device.c1_stream.synchronize();
        if let Some((dp_comm, _)) = dp {
            device.sync_grads(dp_comm)?;
        }
        device.optimizer_step(&mut adam)?;
        if device.rank == reporter && device.tp.tp_rank == 0 {
            let mut total: f64 = device.losses.drain(..).sum();
            if let Some((dp_comm, _)) = dp {
                // Sum the replicas' loss contributions (all reporter-stage
                // devices participate, in the same position of the group's
                // op sequence).
                let mut buf = [total as f32];
                dp_comm
                    .all_reduce(&mut buf, vp_collectives::ReduceOp::Sum)
                    .map_err(|e| TensorError::InvalidArgument(format!("loss sync failed: {e}")))?;
                total = buf[0] as f64;
            }
            iteration_losses.push(total / (config.microbatches * replicas) as f64);
        } else {
            device.losses.clear();
        }
        // Per-iteration cleanup releases every microbatch-keyed buffer back
        // to the tensor arena, so the next iteration's F/B/S/T passes are
        // served from the pool instead of the system allocator.
        device.states.clear();
        device.acts.clear();
        device.w_stash.clear();
        iter_spans.push((it0, epoch.elapsed().as_secs_f64()));
    }
    let shard = device.save_state(adam.timestep());
    Ok(DeviceOutcome {
        losses: if rank == reporter && device.tp.tp_rank == 0 {
            iteration_losses
        } else {
            Vec::new()
        },
        shard,
        spans,
        iter_spans,
        peak_resident: device
            .acts
            .peak_resident()
            .max(device.tp_acts.peak_resident()),
    })
}

/// What a [`train_schedule`] run reports: the per-iteration mean loss
/// trajectory plus a real-timing execution report in the simulator's
/// [`ExecReport`] shape, so the Chrome-trace exporter and
/// [`ScheduleAnalysis`] consume measured data exactly as they consume
/// simulated data.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-iteration mean loss over the global batch.
    pub losses: Vec<f64>,
    /// Wall-clock pass spans (final iteration) and observed activation
    /// peaks, indexed like the schedule's pass lists. Pass durations
    /// include blocking waits on upstream data.
    pub exec: ExecReport,
    /// Wall-clock seconds per training iteration, measured across all
    /// device threads (earliest iteration start to latest iteration end,
    /// including gradient sync and the optimizer step). Later entries are
    /// the steady-state iterations `repro trainbench` reports on.
    pub iter_wall: Vec<f64>,
}

impl TrainReport {
    /// Renders the measured execution as a Chrome trace (`chrome://tracing`
    /// / Perfetto JSON), reusing the simulator's exporter on real timings.
    pub fn chrome_trace(&self, schedule: &Schedule) -> String {
        // Timings are seconds; the exporter expects microseconds per unit.
        to_chrome_trace(schedule, &self.exec, 1e6)
    }

    /// Analyzes the measured execution (bubble decomposition, per-kind
    /// time budgets) with the simulator's [`ScheduleAnalysis`].
    pub fn analysis(&self, schedule: &Schedule) -> ScheduleAnalysis {
        ScheduleAnalysis::new(schedule, &self.exec)
    }
}

/// Trains the tiny model by interpreting an arbitrary validated pipeline
/// [`Schedule`] numerically — the generic metrics-out entry point the
/// family-specific wrappers in [`crate::pipeline`] delegate to.
///
/// The schedule's kind selects the vocabulary placement (plain → Megatron
/// baseline, Vocab-1/2 → Vocabulary Parallelism); devices, chunks and the
/// chunk placement all come from the schedule itself. With identical
/// `config`, the loss trajectory matches
/// [`crate::reference::train_reference`] up to `f32` accumulation-order
/// noise (the Appendix E claim) for every supported schedule.
///
/// # Errors
///
/// Returns an error for invalid configurations (layer count not divisible
/// by the virtual stage count, microbatch mismatch, unsupported schedule
/// kind, failed dependency validation) or if any shard fails numerically.
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_schedule(
    config: &TinyConfig,
    schedule: &Schedule,
    iterations: usize,
    corpus: &DataSource,
) -> Result<TrainReport> {
    run_schedule(config, schedule, iterations, corpus, None)
}

/// [`train_schedule`] with measured-run tracing: returns the report plus a
/// [`TraceLog`] holding per-device events (`F`/`B`/`W`/`S`/`T` pass spans,
/// blocking p2p waits, overlapped communication-stream jobs) of the final
/// iteration. `log.chrome_trace()` renders it for `chrome://tracing`;
/// `log.report()` computes bubble and communication-overlap fractions.
///
/// # Errors
///
/// As [`train_schedule`].
///
/// # Panics
///
/// Panics if a device thread panics.
pub fn train_schedule_traced(
    config: &TinyConfig,
    schedule: &Schedule,
    iterations: usize,
    corpus: &DataSource,
) -> Result<(TrainReport, TraceLog)> {
    let log = TraceLog::new(schedule.devices());
    let report = run_schedule(config, schedule, iterations, corpus, Some(&log))?;
    Ok((report, log))
}

/// The shared runner behind [`train_schedule`] / [`train_schedule_traced`]:
/// spawns one interpreter thread per device, handing each its [`Tracer`]
/// from `log` (or the free disabled handle when no trace is wanted).
fn run_schedule(
    config: &TinyConfig,
    schedule: &Schedule,
    iterations: usize,
    corpus: &DataSource,
    log: Option<&TraceLog>,
) -> Result<TrainReport> {
    check_schedule(config, schedule)?;
    let devices = schedule.devices();
    let endpoints = P2pNetwork::new(devices);
    let c1_comms = CollectiveGroup::new(devices);
    let epoch = Instant::now();
    let results: Vec<Result<DeviceOutcome>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (endpoint, comm) in endpoints.into_iter().zip(c1_comms) {
            let rank = endpoint.rank();
            let corpus = corpus.clone();
            let tracer = log.map(|l| l.tracer(rank)).unwrap_or_else(Tracer::off);
            joins.push(scope.spawn(move || {
                let select =
                    move |iter: u64, m: usize| -> Vec<Microbatch> { corpus.iteration(iter, m) };
                device_loop(
                    config,
                    schedule,
                    iterations,
                    rank,
                    endpoint,
                    comm,
                    TpEnv::solo(),
                    None,
                    &select,
                    None,
                    &tracer,
                    epoch,
                )
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("device thread panicked"))
            .collect()
    });
    let mut outcomes = Vec::with_capacity(devices);
    for r in results {
        outcomes.push(r?);
    }
    let mut losses = Vec::new();
    for o in &outcomes {
        if !o.losses.is_empty() {
            losses = o.losses.clone();
        }
    }
    let refs: Vec<&DeviceOutcome> = outcomes.iter().collect();
    Ok(TrainReport {
        losses,
        exec: assemble_report(schedule, &refs),
        iter_wall: assemble_iter_wall(&refs),
    })
}

/// Collapses the devices' per-iteration spans into one wall time per
/// iteration: earliest start to latest end across all device threads.
pub(crate) fn assemble_iter_wall(outcomes: &[&DeviceOutcome]) -> Vec<f64> {
    let iterations = outcomes
        .iter()
        .map(|o| o.iter_spans.len())
        .max()
        .unwrap_or(0);
    (0..iterations)
        .map(|i| {
            let start = outcomes
                .iter()
                .filter_map(|o| o.iter_spans.get(i))
                .map(|&(s, _)| s)
                .fold(f64::INFINITY, f64::min);
            let end = outcomes
                .iter()
                .filter_map(|o| o.iter_spans.get(i))
                .map(|&(_, e)| e)
                .fold(f64::NEG_INFINITY, f64::max);
            (end - start).max(0.0)
        })
        .collect()
}

/// Assembles the simulator-shaped [`ExecReport`] from the devices' raw
/// wall-clock spans: times are re-anchored so the earliest pass starts at
/// zero, and the observed activation peaks fill the memory fields
/// (activation units weigh each resident microbatch `1/chunks`, matching
/// [`vp_schedule::exec::UnitCosts`]).
pub(crate) fn assemble_report(schedule: &Schedule, outcomes: &[&DeviceOutcome]) -> ExecReport {
    let t0 = outcomes
        .iter()
        .flat_map(|o| o.spans.iter().map(|&(s, _)| s))
        .fold(f64::INFINITY, f64::min);
    let t0 = if t0.is_finite() { t0 } else { 0.0 };
    let mut start = Vec::with_capacity(outcomes.len());
    let mut end = Vec::with_capacity(outcomes.len());
    let mut busy = Vec::with_capacity(outcomes.len());
    let mut peak_units = Vec::with_capacity(outcomes.len());
    let mut peak_resident = Vec::with_capacity(outcomes.len());
    let chunks = schedule.chunks().max(1) as f64;
    for o in outcomes {
        start.push(o.spans.iter().map(|&(s, _)| s - t0).collect::<Vec<_>>());
        end.push(o.spans.iter().map(|&(_, e)| e - t0).collect::<Vec<_>>());
        busy.push(o.spans.iter().map(|&(s, e)| e - s).sum());
        peak_units.push(o.peak_resident as f64 / chunks);
        peak_resident.push(o.peak_resident);
    }
    let makespan = end.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
    ExecReport {
        start,
        end,
        busy,
        makespan,
        peak_activation_units: peak_units,
        peak_resident_microbatches: peak_resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;
    use crate::reference::train_reference;
    use vp_schedule::block::PassTimes;
    use vp_schedule::generators;

    fn source(config: &TinyConfig) -> DataSource {
        DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ))
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + x.abs()),
                "iteration {i}: {x} vs {y} (full: {a:?} vs {b:?})"
            );
        }
    }

    /// The tentpole's generality proof, part 1: zero-bubble vocabulary
    /// schedules (B/W split + deferred T) train numerically and match the
    /// single-device reference within the Figure 17 tolerance — with no
    /// zero-bubble-specific runtime code.
    #[test]
    fn zb_vocab_schedules_train_to_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 6).unwrap();
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let schedule =
                generators::zb_vocab_1f1b(4, config.microbatches as u32, variant, times, true);
            let report =
                train_schedule(&config, &schedule, 6, &source(&config)).unwrap_or_else(|e| {
                    panic!("{variant:?}: {e}");
                });
            assert_close(&reference, &report.losses, 1e-3);
        }
    }

    /// The tentpole's generality proof, part 2: interleaved (round-robin
    /// multi-chunk) vocabulary schedules train numerically and match the
    /// reference.
    #[test]
    fn interleaved_vocab_schedules_train_to_reference() {
        let config = TinyConfig {
            layers: 8,
            ..TinyConfig::default()
        };
        let reference = train_reference(&config, 5).unwrap();
        let times = PassTimes {
            f: 0.5,
            b: 1.0,
            ..PassTimes::default()
        };
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let schedule = generators::interleaved_vocab_1f1b(
                4,
                2,
                config.microbatches as u32,
                variant,
                times,
                true,
            );
            let report =
                train_schedule(&config, &schedule, 5, &source(&config)).unwrap_or_else(|e| {
                    panic!("{variant:?}: {e}");
                });
            assert_close(&reference, &report.losses, 1e-3);
        }
    }

    /// Plain zero-bubble 1F1B (baseline vocabulary placement, B/W split)
    /// also matches the reference: the W pass handler is
    /// placement-agnostic.
    #[test]
    fn zb_baseline_schedule_trains_to_reference() {
        let config = TinyConfig::default();
        let reference = train_reference(&config, 5).unwrap();
        let times = PassTimes {
            f: 1.0,
            b: 1.0,
            w: 1.0,
            ..PassTimes::default()
        };
        let schedule = generators::zb_1f1b(4, config.microbatches as u32, times);
        let report = train_schedule(&config, &schedule, 5, &source(&config)).unwrap();
        assert_close(&reference, &report.losses, 1e-3);
    }

    /// Plain interleaved 1F1B with the Megatron-style baseline placement.
    #[test]
    fn interleaved_baseline_schedule_trains_to_reference() {
        let config = TinyConfig {
            layers: 8,
            ..TinyConfig::default()
        };
        let reference = train_reference(&config, 4).unwrap();
        let times = PassTimes {
            f: 0.5,
            b: 1.0,
            ..PassTimes::default()
        };
        let schedule = generators::interleaved_1f1b(4, 2, config.microbatches as u32, times);
        let report = train_schedule(&config, &schedule, 4, &source(&config)).unwrap();
        assert_close(&reference, &report.losses, 1e-3);
    }

    #[test]
    fn train_schedule_fills_a_real_timing_report() {
        let config = TinyConfig::default();
        let schedule = generators::vocab_1f1b(
            2,
            config.microbatches as u32,
            VocabVariant::Alg2,
            PassTimes::default(),
            true,
        );
        let report = train_schedule(&config, &schedule, 2, &source(&config)).unwrap();
        assert_eq!(report.exec.start.len(), 2);
        // One wall-time entry per iteration, each positive and at least as
        // long as the slowest device's busy pass time for that iteration.
        assert_eq!(report.iter_wall.len(), 2);
        for &w in &report.iter_wall {
            assert!(w > 0.0);
        }
        for d in 0..2 {
            assert_eq!(report.exec.start[d].len(), schedule.passes(d).len());
            assert!(report.exec.busy[d] > 0.0);
            // Pass spans are well-formed and inside the makespan.
            for i in 0..schedule.passes(d).len() {
                assert!(report.exec.start[d][i] >= 0.0);
                assert!(report.exec.end[d][i] >= report.exec.start[d][i]);
                assert!(report.exec.end[d][i] <= report.exec.makespan + 1e-12);
            }
        }
        // The simulator's consumers work on the measured report.
        let analysis = report.analysis(&schedule);
        assert!(analysis.makespan > 0.0);
        assert!(analysis.render().contains("mean bubble"));
        let trace = report.chrome_trace(&schedule);
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("\"S\"") || trace.contains("S0"));
    }

    #[test]
    fn mismatched_microbatches_are_rejected() {
        let config = TinyConfig::default(); // 4 microbatches
        let schedule = generators::one_f_one_b(2, 8, PassTimes::default());
        let err = train_schedule(&config, &schedule, 1, &source(&config)).unwrap_err();
        assert!(err.to_string().contains("microbatch"));
    }

    #[test]
    fn interlaced_schedules_are_rejected() {
        let config = TinyConfig::default();
        let schedule =
            generators::interlaced_1f1b(2, config.microbatches as u32, PassTimes::default());
        let err = train_schedule(&config, &schedule, 1, &source(&config)).unwrap_err();
        assert!(err.to_string().contains("interlaced"));
    }
}
