//! Forward-only evaluation and greedy decoding on a trained
//! [`ReferenceTrainer`] — validation loss/perplexity/next-token accuracy,
//! and text-style generation for the examples.

use crate::checkpoint::ReferenceTrainer;
use crate::data::DataSource;
use vp_tensor::ops::argmax_rows;
use vp_tensor::{Result, Tensor, TensorError};

/// Held-out evaluation metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Mean cross-entropy over the evaluated tokens.
    pub loss: f64,
    /// `exp(loss)`.
    pub perplexity: f64,
    /// Greedy next-token accuracy.
    pub accuracy: f64,
}

impl ReferenceTrainer {
    /// Forward pass producing logits for one token sequence.
    ///
    /// # Errors
    ///
    /// Returns shape/label errors for malformed inputs.
    pub fn logits(&self, tokens: &[usize]) -> Result<Tensor> {
        let config = self.config();
        if tokens.len() > config.seq_len {
            return Err(TensorError::InvalidArgument(format!(
                "sequence of {} tokens exceeds seq_len {}",
                tokens.len(),
                config.seq_len
            )));
        }
        let (embedded, _) = self.embedding_view().forward(tokens)?;
        let pos = self.pos_view().slice_rows(0, tokens.len())?;
        let x0 = embedded.add(&pos)?;
        let (h, _) = crate::reference::forward_blocks(self.blocks_view(), &x0)?;
        h.matmul_nt(self.output_weight_view())
    }

    /// Evaluates mean loss, perplexity and greedy accuracy over
    /// `microbatches` batches drawn from `source` starting at stream
    /// position `offset` (use an offset past the training range for a
    /// held-out split).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn evaluate(
        &self,
        source: &DataSource,
        offset: u64,
        microbatches: usize,
    ) -> Result<EvalReport> {
        let mut total_loss = 0.0;
        let mut correct = 0usize;
        let mut total = 0usize;
        for mb in source.iteration(offset, microbatches) {
            let logits = self.logits(&mb.tokens)?;
            total_loss += vp_tensor::ops::cross_entropy_mean(&logits, &mb.labels)?;
            for (pred, &label) in argmax_rows(&logits).iter().zip(&mb.labels) {
                correct += usize::from(*pred == label);
                total += 1;
            }
        }
        let loss = total_loss / microbatches as f64;
        Ok(EvalReport {
            loss,
            perplexity: loss.exp(),
            accuracy: correct as f64 / total.max(1) as f64,
        })
    }

    /// Greedily decodes `new_tokens` continuations of `prompt`, using a
    /// sliding window of the model's sequence length.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty prompt or out-of-vocabulary ids.
    pub fn generate(&self, prompt: &[usize], new_tokens: usize) -> Result<Vec<usize>> {
        if prompt.is_empty() {
            return Err(TensorError::InvalidArgument(
                "prompt must be non-empty".into(),
            ));
        }
        let seq_len = self.config().seq_len;
        let mut out = prompt.to_vec();
        for _ in 0..new_tokens {
            let window_start = out.len().saturating_sub(seq_len);
            let window = &out[window_start..];
            let logits = self.logits(window)?;
            let next = argmax_rows(&logits)[window.len() - 1];
            out.push(next);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticCorpus;
    use crate::model::TinyConfig;

    fn trained(iters: usize) -> (ReferenceTrainer, DataSource, TinyConfig) {
        let config = TinyConfig::default();
        let src = DataSource::Synthetic(SyntheticCorpus::new(
            config.vocab,
            config.seq_len,
            config.seed,
        ));
        let mut t = ReferenceTrainer::new(&config);
        t.train(iters, &src).unwrap();
        (t, src, config)
    }

    #[test]
    fn training_improves_heldout_metrics() {
        let (fresh, src, config) = trained(0);
        let (tuned, _, _) = trained(25);
        // Evaluate on a stream region past the training range.
        let offset = 1000;
        let before = fresh.evaluate(&src, offset, 4).unwrap();
        let after = tuned.evaluate(&src, offset, 4).unwrap();
        assert!(
            after.loss < before.loss,
            "before {before:?} after {after:?}"
        );
        assert!(after.perplexity < before.perplexity);
        assert!((before.loss - (config.vocab as f64).ln()).abs() < 0.5);
    }

    #[test]
    fn generation_extends_the_prompt() {
        let (t, _, config) = trained(5);
        let out = t.generate(&[1, 2, 3], 10).unwrap();
        assert_eq!(out.len(), 13);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < config.vocab));
    }

    #[test]
    fn generation_respects_the_context_window() {
        let (t, _, config) = trained(1);
        // Prompt longer than seq_len still works via the sliding window.
        let prompt: Vec<usize> = (0..config.seq_len + 5).map(|i| i % config.vocab).collect();
        let out = t.generate(&prompt, 3).unwrap();
        assert_eq!(out.len(), prompt.len() + 3);
        assert!(t.generate(&[], 1).is_err());
    }

    #[test]
    fn logits_reject_overlong_sequences() {
        let (t, _, config) = trained(0);
        let too_long: Vec<usize> = vec![0; config.seq_len + 1];
        assert!(t.logits(&too_long).is_err());
    }
}
