use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error type for collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// A participant supplied a buffer of unexpected length.
    LengthMismatch {
        /// Rank of the complaining participant.
        rank: usize,
        /// Length this participant supplied.
        got: usize,
        /// Length supplied by the first arriving participant.
        expected: usize,
    },
    /// A rank argument was out of range.
    BadRank {
        /// The offending rank.
        rank: usize,
        /// Number of participants.
        world: usize,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::LengthMismatch {
                rank,
                got,
                expected,
            } => {
                write!(
                    f,
                    "rank {rank} supplied {got} elements, expected {expected}"
                )
            }
            CollectiveError::BadRank { rank, world } => {
                write!(f, "rank {rank} out of range for world size {world}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

/// Reduction operator for [`Collective::all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum (used for the softmax max statistic).
    Max,
}

impl ReduceOp {
    #[inline]
    fn combine(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
        }
    }

    /// Identity element of the operator.
    pub fn identity(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
        }
    }
}

/// One round of rendezvous state shared by all ranks.
struct Round {
    arrived: usize,
    generation: u64,
    contributions: Vec<Option<Vec<f32>>>,
    /// Gathered contributions of the *completed* generation, kept until
    /// every rank has copied what it needs.
    published: Vec<Vec<f32>>,
}

struct Shared {
    world: usize,
    round: Mutex<Round>,
    cv: Condvar,
}

/// Factory for the per-rank [`Collective`] handles of one communicator.
///
/// Mirrors an NCCL communicator: every rank must call each collective the
/// same number of times in the same order. Use separate groups for separate
/// logical streams (e.g. one for vocabulary-layer barriers, one for
/// data-parallel gradient sync) exactly as the paper uses separate NCCL
/// communicators per stream.
#[derive(Debug)]
pub struct CollectiveGroup;

impl CollectiveGroup {
    /// Creates the `world` per-rank handles of a new communicator.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    #[allow(clippy::new_ret_no_self)] // a factory for per-rank handles, not a constructor
    pub fn new(world: usize) -> Vec<Collective> {
        assert!(world > 0, "world size must be positive");
        let shared = Arc::new(Shared {
            world,
            round: Mutex::new(Round {
                arrived: 0,
                generation: 0,
                contributions: vec![None; world],
                published: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        (0..world)
            .map(|rank| Collective {
                rank,
                shared: Arc::clone(&shared),
            })
            .collect()
    }
}

/// Per-rank handle to a collective communicator.
pub struct Collective {
    rank: usize,
    shared: Arc<Shared>,
}

impl fmt::Debug for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collective")
            .field("rank", &self.rank)
            .field("world", &self.shared.world)
            .finish()
    }
}

impl Collective {
    /// This participant's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of participants.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// The universal rendezvous: every rank contributes a buffer; once all
    /// have arrived, all contributions are published and every rank returns
    /// a clone of the full set (indexed by rank).
    fn exchange(&self, contribution: Vec<f32>) -> Vec<Vec<f32>> {
        let shared = &*self.shared;
        let mut round = shared.round.lock().expect("collective lock poisoned");
        let my_generation = round.generation;
        round.contributions[self.rank] = Some(contribution);
        round.arrived += 1;
        if round.arrived == shared.world {
            round.published = round
                .contributions
                .iter_mut()
                .map(|c| c.take().expect("all ranks contributed"))
                .collect();
            round.arrived = 0;
            round.generation += 1;
            shared.cv.notify_all();
        } else {
            while round.generation == my_generation {
                round = shared.cv.wait(round).expect("collective lock poisoned");
            }
        }
        round.published.clone()
    }

    /// Blocks until every rank has reached the barrier.
    pub fn barrier(&self) {
        let _ = self.exchange(Vec::new());
    }

    /// All-reduce: combines every rank's buffer elementwise with `op`; on
    /// return every rank's `data` holds the reduced result.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if the ranks disagree on
    /// the buffer length.
    pub fn all_reduce(&self, data: &mut [f32], op: ReduceOp) -> Result<(), CollectiveError> {
        // A one-rank group is a true no-op: returning without touching the
        // buffer keeps it bitwise intact, whereas folding through the
        // identity would rewrite -0.0 to +0.0 under `Sum`.
        if self.world() == 1 {
            return Ok(());
        }
        let gathered = self.exchange(data.to_vec());
        let expected = gathered[0].len();
        for (rank, c) in gathered.iter().enumerate() {
            if c.len() != expected {
                return Err(CollectiveError::LengthMismatch {
                    rank,
                    got: c.len(),
                    expected,
                });
            }
        }
        if data.len() != expected {
            return Err(CollectiveError::LengthMismatch {
                rank: self.rank,
                got: data.len(),
                expected,
            });
        }
        data.fill(op.identity());
        for c in &gathered {
            for (d, &v) in data.iter_mut().zip(c) {
                *d = op.combine(*d, v);
            }
        }
        Ok(())
    }

    /// Reduce-to-root: like [`Self::all_reduce`] but only `root`'s buffer is
    /// updated (other ranks' buffers are left untouched).
    ///
    /// The paper implements the `∇X` reduce as an NCCL AllReduce to keep the
    /// communication volume balanced (§6.1); we expose both for clarity.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::BadRank`] for an invalid root, or a length
    /// mismatch as in [`Self::all_reduce`].
    pub fn reduce(
        &self,
        data: &mut [f32],
        root: usize,
        op: ReduceOp,
    ) -> Result<(), CollectiveError> {
        if root >= self.world() {
            return Err(CollectiveError::BadRank {
                rank: root,
                world: self.world(),
            });
        }
        let mut scratch = data.to_vec();
        self.all_reduce(&mut scratch, op)?;
        if self.rank == root {
            data.copy_from_slice(&scratch);
        }
        Ok(())
    }

    /// Broadcast: copies `root`'s buffer into every rank's `data`.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::BadRank`] for an invalid root, or
    /// [`CollectiveError::LengthMismatch`] if receivers sized their buffers
    /// differently from the root's payload.
    pub fn broadcast(&self, data: &mut [f32], root: usize) -> Result<(), CollectiveError> {
        if root >= self.world() {
            return Err(CollectiveError::BadRank {
                rank: root,
                world: self.world(),
            });
        }
        let contribution = if self.rank == root {
            data.to_vec()
        } else {
            Vec::new()
        };
        let gathered = self.exchange(contribution);
        let payload = &gathered[root];
        if payload.len() != data.len() {
            return Err(CollectiveError::LengthMismatch {
                rank: self.rank,
                got: data.len(),
                expected: payload.len(),
            });
        }
        data.copy_from_slice(payload);
        Ok(())
    }

    /// Reduce-scatter: every rank contributes a buffer of `world · n`
    /// elements; rank `r` receives the elementwise reduction of everyone's
    /// `r`-th segment. The building block of ZeRO-style sharded gradient
    /// synchronization.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if buffers disagree or
    /// are not divisible by the world size.
    pub fn reduce_scatter(&self, data: &[f32], op: ReduceOp) -> Result<Vec<f32>, CollectiveError> {
        let world = self.world();
        // One-rank group: the single segment is the whole buffer and the
        // reduction is the identity — return it bitwise unchanged.
        if world == 1 {
            return Ok(data.to_vec());
        }
        if !data.len().is_multiple_of(world) {
            return Err(CollectiveError::LengthMismatch {
                rank: self.rank,
                got: data.len(),
                expected: (data.len() / world + 1) * world,
            });
        }
        let gathered = self.exchange(data.to_vec());
        let expected = gathered[0].len();
        for (rank, c) in gathered.iter().enumerate() {
            if c.len() != expected {
                return Err(CollectiveError::LengthMismatch {
                    rank,
                    got: c.len(),
                    expected,
                });
            }
        }
        let seg = expected / world;
        let start = self.rank * seg;
        let mut out = vec![op.identity(); seg];
        for c in &gathered {
            for (o, &v) in out.iter_mut().zip(&c[start..start + seg]) {
                *o = op.combine(*o, v);
            }
        }
        Ok(out)
    }

    /// All-gather: returns every rank's contribution, indexed by rank.
    /// Contributions may have different lengths (vocabulary shards are
    /// padded to equal size in practice, but the primitive is general).
    pub fn all_gather(&self, data: &[f32]) -> Vec<Vec<f32>> {
        self.exchange(data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_parallel<F, T>(world: usize, f: F) -> Vec<T>
    where
        F: Fn(Collective) -> T + Send + Sync,
        T: Send,
    {
        let handles = CollectiveGroup::new(world);
        thread::scope(|scope| {
            let mut joins = Vec::new();
            for h in handles {
                joins.push(scope.spawn(|| f(h)));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sum() {
        let results = run_parallel(4, |c| {
            let mut data = vec![c.rank() as f32, 1.0];
            c.all_reduce(&mut data, ReduceOp::Sum).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_max_with_neg_infinity() {
        let results = run_parallel(3, |c| {
            let mut data = vec![if c.rank() == 1 {
                5.0
            } else {
                f32::NEG_INFINITY
            }];
            c.all_reduce(&mut data, ReduceOp::Max).unwrap();
            data[0]
        });
        assert!(results.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn repeated_all_reduces_do_not_cross_talk() {
        let results = run_parallel(4, |c| {
            let mut acc = Vec::new();
            for round in 0..50 {
                let mut data = vec![(c.rank() + round) as f32];
                c.all_reduce(&mut data, ReduceOp::Sum).unwrap();
                acc.push(data[0]);
            }
            acc
        });
        for r in results {
            for (round, v) in r.iter().enumerate() {
                assert_eq!(*v, (6 + 4 * round) as f32);
            }
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let results = run_parallel(3, move |c| {
                let mut data = if c.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                c.broadcast(&mut data, root).unwrap();
                data
            });
            for r in results {
                assert_eq!(r, vec![42.0, 7.0]);
            }
        }
    }

    #[test]
    fn reduce_updates_only_root() {
        let results = run_parallel(3, |c| {
            let mut data = vec![1.0];
            c.reduce(&mut data, 2, ReduceOp::Sum).unwrap();
            (c.rank(), data[0])
        });
        for (rank, v) in results {
            if rank == 2 {
                assert_eq!(v, 3.0);
            } else {
                assert_eq!(v, 1.0);
            }
        }
    }

    #[test]
    fn all_gather_preserves_rank_order_and_lengths() {
        let results = run_parallel(3, |c| {
            let data = vec![c.rank() as f32; c.rank() + 1];
            c.all_gather(&data)
        });
        for r in results {
            assert_eq!(r.len(), 3);
            for (rank, part) in r.iter().enumerate() {
                assert_eq!(part.len(), rank + 1);
                assert!(part.iter().all(|&v| v == rank as f32));
            }
        }
    }

    #[test]
    fn reduce_scatter_distributes_segments() {
        let results = run_parallel(3, |c| {
            // Rank r contributes [r, r, r, r+10, r+10, r+10, r+20, ...].
            let data: Vec<f32> = (0..3)
                .flat_map(|seg| std::iter::repeat_n((c.rank() + 10 * seg) as f32, 2))
                .collect();
            (c.rank(), c.reduce_scatter(&data, ReduceOp::Sum).unwrap())
        });
        for (rank, out) in results {
            // Segment `rank` summed over ranks: Σ_r (r + 10·rank) = 3 + 30·rank.
            let expected = (3 + 30 * rank) as f32;
            assert_eq!(out, vec![expected, expected], "rank {rank}");
        }
    }

    #[test]
    fn reduce_scatter_rejects_indivisible() {
        let results = run_parallel(2, |c| c.reduce_scatter(&[1.0; 3], ReduceOp::Sum));
        assert!(results.iter().all(|r| r.is_err()));
    }

    #[test]
    fn mismatched_lengths_error() {
        let results = run_parallel(2, |c| {
            let mut data = vec![0.0; c.rank() + 1];
            c.all_reduce(&mut data, ReduceOp::Sum)
        });
        assert!(results.iter().any(|r| r.is_err()));
    }

    #[test]
    fn bad_root_is_rejected() {
        let results = run_parallel(2, |c| {
            // Invalid root is rejected locally without a rendezvous, so all
            // ranks see the same error and nobody blocks.
            c.broadcast(&mut [0.0], 5)
        });
        for r in results {
            assert_eq!(r, Err(CollectiveError::BadRank { rank: 5, world: 2 }));
        }
    }

    #[test]
    fn world_of_one_all_reduce_is_bitwise_identity() {
        // -0.0, subnormals and extreme exponents must survive untouched:
        // `0.0 + v` would flush -0.0 to +0.0, so the degenerate group must
        // not fold through the identity element at all.
        let tricky = [-0.0f32, 0.0, f32::MIN_POSITIVE / 2.0, -1.5e38, 3.4e38];
        let results = run_parallel(1, move |c| {
            let mut sum = tricky.to_vec();
            c.all_reduce(&mut sum, ReduceOp::Sum).unwrap();
            let mut max = tricky.to_vec();
            c.all_reduce(&mut max, ReduceOp::Max).unwrap();
            (sum, max)
        });
        for (sum, max) in results {
            for (a, b) in tricky.iter().zip(&sum) {
                assert_eq!(a.to_bits(), b.to_bits(), "sum changed {a}");
            }
            for (a, b) in tricky.iter().zip(&max) {
                assert_eq!(a.to_bits(), b.to_bits(), "max changed {a}");
            }
        }
    }

    #[test]
    fn world_of_one_reduce_scatter_is_bitwise_identity() {
        let tricky = [-0.0f32, f32::MIN_POSITIVE / 4.0, -2.5];
        let results = run_parallel(1, move |c| {
            c.reduce_scatter(&tricky, ReduceOp::Sum).unwrap()
        });
        for out in results {
            assert_eq!(out.len(), tricky.len());
            for (a, b) in tricky.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // A length not divisible by any larger world is fine at world 1.
        let odd = [1.0f32; 7];
        let results = run_parallel(1, move |c| c.reduce_scatter(&odd, ReduceOp::Sum).unwrap());
        assert_eq!(results[0], odd.to_vec());
    }

    #[test]
    fn world_of_one_broadcast_and_barrier_are_no_ops() {
        let results = run_parallel(1, |c| {
            let mut data = vec![-0.0f32, 9.25];
            c.broadcast(&mut data, 0).unwrap();
            c.barrier();
            let mut root = vec![-7.5f32];
            c.reduce(&mut root, 0, ReduceOp::Max).unwrap();
            (data, root)
        });
        let (data, root) = &results[0];
        assert_eq!(data[0].to_bits(), (-0.0f32).to_bits());
        assert_eq!(data[1], 9.25);
        assert_eq!(root[0], -7.5);
    }

    #[test]
    fn uneven_last_shard_round_trips_bitwise() {
        // Shard a buffer whose length does not divide the world size: the
        // last shard is short. all_gather + concatenation must reproduce
        // the original bitwise (vocabulary shards with the paper's padding
        // removed hit exactly this shape).
        let full: Vec<f32> = (0..10)
            .map(|i| if i % 3 == 0 { -0.0 } else { i as f32 * 1.3e-5 })
            .collect();
        let bounds = |rank: usize| {
            // 4-4-2 split over 3 ranks.
            let base = 4usize;
            let start = (base * rank).min(full.len());
            let end = (base * (rank + 1)).min(full.len());
            (start, end)
        };
        let full_clone = full.clone();
        let results = run_parallel(3, move |c| {
            let (start, end) = bounds(c.rank());
            c.all_gather(&full_clone[start..end])
        });
        for gathered in results {
            let rebuilt: Vec<f32> = gathered.concat();
            assert_eq!(rebuilt.len(), full.len());
            for (a, b) in full.iter().zip(&rebuilt) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_parallel(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
