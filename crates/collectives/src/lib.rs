#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Simulated multi-device communication for pipeline-parallel training.
//!
//! The paper runs on NCCL across up to 32 GPUs; here every "device" is a
//! thread inside one process and the collectives are rendezvous points built
//! on locks and channels. What matters for reproducing the paper is the
//! *synchronization semantics*: an all-reduce is a barrier across all
//! participating devices (the paper's communication barriers `C0..C2`), a
//! point-to-point send/recv is a dependency between adjacent pipeline
//! stages, and a communication *stream* lets collectives overlap with
//! compute exactly as the paper overlaps NCCL kernels with transformer
//! layers (§6.1).
//!
//! Components:
//!
//! * [`CollectiveGroup`] / [`Collective`] — all-reduce (sum/max), reduce,
//!   broadcast, all-gather, barrier across `p` devices.
//! * [`P2pNetwork`] / [`P2pEndpoint`] — tagged point-to-point packets
//!   between stages.
//! * [`CommStream`] — a per-device worker thread that executes queued
//!   communication jobs in order, returning [`JobHandle`]s, so compute can
//!   proceed while a barrier is in flight.

mod collective;
mod p2p;
mod stream;

pub use collective::{Collective, CollectiveError, CollectiveGroup, ReduceOp};
pub use p2p::{P2pEndpoint, P2pError, P2pNetwork, Packet};
pub use stream::{CommStream, JobHandle};
