use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use vp_trace::{Tracer, Track, NO_MICROBATCH};

/// A tagged point-to-point message carrying a 2-D tensor payload.
///
/// Tags let a receiver match a specific logical transfer (e.g. "activation
/// of microbatch 7, chunk 0") even when multiple transfers between the same
/// pair of stages are in flight, which happens in V-shape schedules where a
/// device exchanges both chunk-0 and chunk-1 traffic with its neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Application-defined routing tag.
    pub tag: u64,
    /// Row count of the payload.
    pub rows: usize,
    /// Column count of the payload.
    pub cols: usize,
    /// Row-major payload (`rows * cols` elements).
    pub data: Vec<f32>,
}

impl Packet {
    /// Creates a packet, validating that the payload matches the shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` (caller bug).
    pub fn new(tag: u64, rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "packet payload does not match shape"
        );
        Packet {
            tag,
            rows,
            cols,
            data,
        }
    }
}

/// Error type for point-to-point operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P2pError {
    /// The peer rank does not exist.
    BadPeer {
        /// The offending rank.
        peer: usize,
        /// Number of endpoints in the network.
        world: usize,
    },
    /// The channel to/from the peer was disconnected (peer dropped).
    Disconnected {
        /// The peer whose channel went away.
        peer: usize,
    },
}

impl fmt::Display for P2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2pError::BadPeer { peer, world } => {
                write!(f, "peer {peer} out of range for world size {world}")
            }
            P2pError::Disconnected { peer } => write!(f, "channel to peer {peer} disconnected"),
        }
    }
}

impl std::error::Error for P2pError {}

/// Builder for a fully-connected point-to-point network of `world`
/// endpoints.
#[derive(Debug)]
pub struct P2pNetwork;

impl P2pNetwork {
    /// Creates the per-rank endpoints of a fully-connected network.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    #[allow(clippy::new_ret_no_self)] // a factory for per-rank endpoints, not a constructor
    pub fn new(world: usize) -> Vec<P2pEndpoint> {
        assert!(world > 0, "world size must be positive");
        // senders[src][dst] / receivers[dst][src]
        let mut senders: Vec<Vec<Option<Sender<Packet>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        let mut receivers: Vec<Vec<Option<Receiver<Packet>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            for dst in 0..world {
                let (tx, rx) = channel();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| P2pEndpoint {
                rank,
                to_peers: tx_row.into_iter().map(Option::unwrap).collect(),
                from_peers: rx_row.into_iter().map(Option::unwrap).collect(),
                stashes: (0..world).map(|_| VecDeque::new()).collect(),
                tracer: Tracer::off(),
            })
            .collect()
    }
}

/// Per-rank endpoint of a [`P2pNetwork`].
pub struct P2pEndpoint {
    rank: usize,
    to_peers: Vec<Sender<Packet>>,
    from_peers: Vec<Receiver<Packet>>,
    /// Packets received while looking for a different tag, per peer.
    stashes: Vec<VecDeque<Packet>>,
    /// Measured-run recording handle ([`Tracer::off`] by default): blocking
    /// receives record `p2p.recv` wait spans, sends record `p2p.send`.
    tracer: Tracer,
}

impl fmt::Debug for P2pEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("P2pEndpoint")
            .field("rank", &self.rank)
            .field("world", &self.to_peers.len())
            .finish()
    }
}

impl P2pEndpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of endpoints in the network.
    pub fn world(&self) -> usize {
        self.to_peers.len()
    }

    /// Attaches a measured-run tracer: subsequent blocking receives record
    /// `p2p.recv` spans on the wait track, sends record `p2p.send`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sends a packet to `dst` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::BadPeer`] for an unknown destination or
    /// [`P2pError::Disconnected`] if the destination endpoint was dropped.
    pub fn send(&self, dst: usize, packet: Packet) -> Result<(), P2pError> {
        let tx = self.to_peers.get(dst).ok_or(P2pError::BadPeer {
            peer: dst,
            world: self.world(),
        })?;
        let span = self.tracer.span(Track::Wait, "p2p.send", NO_MICROBATCH, 0);
        let sent = tx
            .send(packet)
            .map_err(|_| P2pError::Disconnected { peer: dst });
        span.end();
        sent
    }

    /// Receives the next packet from `src` regardless of tag, blocking until
    /// one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::BadPeer`] / [`P2pError::Disconnected`] as in
    /// [`Self::send`].
    pub fn recv(&mut self, src: usize) -> Result<Packet, P2pError> {
        if src >= self.world() {
            return Err(P2pError::BadPeer {
                peer: src,
                world: self.world(),
            });
        }
        if let Some(p) = self.stashes[src].pop_front() {
            return Ok(p);
        }
        // A stash hit costs no wait; only the blocking receive is a span.
        let span = self.tracer.span(Track::Wait, "p2p.recv", NO_MICROBATCH, 0);
        let got = self.from_peers[src]
            .recv()
            .map_err(|_| P2pError::Disconnected { peer: src });
        span.end();
        got
    }

    /// Receives the packet with the given tag from `src`, stashing (and
    /// preserving the order of) any other packets that arrive first.
    ///
    /// # Errors
    ///
    /// Returns [`P2pError::BadPeer`] / [`P2pError::Disconnected`] as in
    /// [`Self::send`].
    pub fn recv_tag(&mut self, src: usize, tag: u64) -> Result<Packet, P2pError> {
        if src >= self.world() {
            return Err(P2pError::BadPeer {
                peer: src,
                world: self.world(),
            });
        }
        if let Some(pos) = self.stashes[src].iter().position(|p| p.tag == tag) {
            return Ok(self.stashes[src].remove(pos).expect("position just found"));
        }
        // A stash hit costs no wait; only the blocking receive is a span.
        let span = self.tracer.span(Track::Wait, "p2p.recv", NO_MICROBATCH, 0);
        loop {
            let p = match self.from_peers[src].recv() {
                Ok(p) => p,
                Err(_) => {
                    span.end();
                    return Err(P2pError::Disconnected { peer: src });
                }
            };
            if p.tag == tag {
                span.end();
                return Ok(p);
            }
            self.stashes[src].push_back(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_between_threads() {
        let mut eps = P2pNetwork::new(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                a.send(1, Packet::new(0, 1, 2, vec![1.0, 2.0])).unwrap();
            });
            let p = b.recv(0).unwrap();
            assert_eq!(p.data, vec![1.0, 2.0]);
        });
    }

    #[test]
    fn recv_tag_reorders() {
        let mut eps = P2pNetwork::new(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, Packet::new(10, 1, 1, vec![10.0])).unwrap();
        a.send(1, Packet::new(20, 1, 1, vec![20.0])).unwrap();
        a.send(1, Packet::new(30, 1, 1, vec![30.0])).unwrap();
        assert_eq!(b.recv_tag(0, 20).unwrap().data, vec![20.0]);
        // Stashed packets are still delivered, in arrival order.
        assert_eq!(b.recv(0).unwrap().data, vec![10.0]);
        assert_eq!(b.recv_tag(0, 30).unwrap().data, vec![30.0]);
    }

    #[test]
    fn self_send_is_allowed() {
        let mut eps = P2pNetwork::new(1);
        let mut a = eps.pop().unwrap();
        a.send(0, Packet::new(1, 1, 1, vec![5.0])).unwrap();
        assert_eq!(a.recv(0).unwrap().data, vec![5.0]);
    }

    #[test]
    fn bad_peer_is_rejected() {
        let mut eps = P2pNetwork::new(2);
        let mut a = eps.remove(0);
        assert!(matches!(
            a.send(7, Packet::new(0, 0, 0, vec![])),
            Err(P2pError::BadPeer { .. })
        ));
        assert!(matches!(a.recv(7), Err(P2pError::BadPeer { .. })));
    }

    #[test]
    fn disconnected_peer_is_reported() {
        let mut eps = P2pNetwork::new(2);
        let mut a = eps.remove(0);
        drop(eps); // drop endpoint 1
        assert!(matches!(a.recv(1), Err(P2pError::Disconnected { peer: 1 })));
    }

    #[test]
    #[should_panic(expected = "payload does not match shape")]
    fn packet_shape_is_validated() {
        let _ = Packet::new(0, 2, 2, vec![1.0]);
    }
}
