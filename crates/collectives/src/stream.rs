use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;
use vp_trace::{Tracer, Track, NO_MICROBATCH};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A per-device communication stream: a worker thread that executes queued
/// jobs strictly in submission order.
///
/// This models the CUDA-stream trick of §6.1: the paper maps the vocabulary
/// all-reduces onto a separate stream so the communication barrier overlaps
/// with transformer-layer compute. Here the compute thread submits a closure
/// that performs the (blocking) collective and immediately continues
/// computing; it joins the returned [`JobHandle`] only at the point where
/// the schedule actually needs the result.
///
/// Jobs submitted by *different* devices to their own streams rendezvous
/// with each other through a [`crate::CollectiveGroup`] dedicated to that
/// stream, exactly like per-stream NCCL communicators.
pub struct CommStream {
    tx: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    /// Measured-run recording handle ([`Tracer::off`] by default): each
    /// submitted job records a `stream.job` span on the stream track while
    /// it runs on the worker, and [`JobHandle::wait`] records a
    /// `stream.wait` span on the wait track while the submitter blocks.
    tracer: Tracer,
}

impl fmt::Debug for CommStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommStream")
            .field("alive", &self.tx.is_some())
            .finish()
    }
}

/// Handle to a job submitted to a [`CommStream`].
#[derive(Debug)]
pub struct JobHandle<T> {
    rx: Receiver<T>,
    tracer: Tracer,
}

impl<T> JobHandle<T> {
    /// Blocks until the job completes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the job itself panicked (the stream drops the result
    /// channel), which indicates a bug in the submitted closure.
    pub fn wait(self) -> T {
        let span = self
            .tracer
            .span(Track::Wait, "stream.wait", NO_MICROBATCH, 0);
        let out = self.rx.recv().expect("communication job panicked");
        span.end();
        out
    }

    /// Returns the result if the job has already finished, or `None` while
    /// it is still pending.
    ///
    /// # Panics
    ///
    /// Panics if the job itself panicked, matching [`JobHandle::wait`]'s
    /// contract. (A panicked job drops the result channel, so conflating
    /// that disconnect with "still pending" would make a poller spin
    /// forever on a dead job.)
    pub fn try_wait(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(v) => Some(v),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("communication job panicked"),
        }
    }
}

impl CommStream {
    /// Spawns the stream's worker thread.
    pub fn new() -> Self {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
        let worker = std::thread::Builder::new()
            .name("comm-stream".into())
            .spawn(move || {
                for job in rx {
                    job();
                }
            })
            .expect("failed to spawn comm stream thread");
        CommStream {
            tx: Some(tx),
            worker: Some(worker),
            tracer: Tracer::off(),
        }
    }

    /// Attaches a measured-run tracer; see the field docs for what records.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Submits a job; jobs run in submission order on the worker thread.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (result_tx, result_rx) = channel();
        let tracer = self.tracer.clone();
        let job: Job = Box::new(move || {
            let span = tracer.span(Track::Stream, "stream.job", NO_MICROBATCH, 0);
            let out = f();
            span.end();
            // A dropped handle is fine: the job's effect may be all we need.
            let _ = result_tx.send(out);
        });
        self.tx
            .as_ref()
            .expect("stream already shut down")
            .send(job)
            .expect("comm stream worker exited unexpectedly");
        JobHandle {
            rx: result_rx,
            tracer: self.tracer.clone(),
        }
    }

    /// Waits for all previously-submitted jobs to finish.
    pub fn synchronize(&self) {
        self.submit(|| ()).wait();
    }
}

impl Default for CommStream {
    fn default() -> Self {
        CommStream::new()
    }
}

impl Drop for CommStream {
    fn drop(&mut self) {
        // Closing the channel lets the worker drain remaining jobs and exit.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectiveGroup, ReduceOp};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_in_submission_order() {
        let stream = CommStream::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..20 {
            let log = Arc::clone(&log);
            handles.push(stream.submit(move || log.lock().unwrap().push(i)));
        }
        for h in handles {
            h.wait();
        }
        assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn overlapped_all_reduce_across_streams() {
        // Each "device" submits an all-reduce to its own stream and keeps
        // "computing" (incrementing a counter) while the barrier resolves.
        let world = 4;
        let comms = CollectiveGroup::new(world);
        let compute_work = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for comm in comms {
                let compute_work = Arc::clone(&compute_work);
                scope.spawn(move || {
                    let stream = CommStream::new();
                    let rank = comm.rank();
                    let handle = stream.submit(move || {
                        let mut data = vec![rank as f32];
                        comm.all_reduce(&mut data, ReduceOp::Sum).unwrap();
                        data[0]
                    });
                    // Overlapped "compute".
                    compute_work.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(handle.wait(), 6.0);
                });
            }
        });
        assert_eq!(compute_work.load(Ordering::SeqCst), world);
    }

    #[test]
    fn synchronize_flushes_queue() {
        let stream = CommStream::new();
        let flag = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&flag);
        stream.submit(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            f.store(1, Ordering::SeqCst);
        });
        stream.synchronize();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_wait_reports_pending_then_done() {
        let stream = CommStream::new();
        let h = stream.submit(|| 42);
        stream.synchronize();
        assert_eq!(h.try_wait(), Some(42));
    }

    #[test]
    fn try_wait_propagates_job_panic_instead_of_pending_forever() {
        // Regression: `try_wait` used to map `Disconnected` to `None`, so a
        // poller would spin forever on a job that panicked, despite `wait`'s
        // documented panic contract.
        let stream = CommStream::new();
        let h: JobHandle<i32> = stream.submit(|| panic!("collective failed"));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.try_wait()));
            match polled {
                // Pending: the worker has not died yet — keep polling.
                Ok(None) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "try_wait never surfaced the job panic"
                    );
                    std::thread::yield_now();
                }
                Ok(Some(v)) => panic!("panicked job returned a value: {v}"),
                // The panic surfaced through try_wait: contract restored.
                Err(_) => break,
            }
        }
    }
}
