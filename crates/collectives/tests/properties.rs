//! Randomized tests for the simulated collectives, driven by a
//! deterministic seed sweep: results must match a sequential reduction for
//! arbitrary world sizes, payloads and op sequences, and repeated rounds
//! must never cross-talk.

use vp_collectives::{CollectiveGroup, P2pNetwork, Packet, ReduceOp};

/// Minimal SplitMix64 — vp-collectives has no other workspace
/// dependencies, so the tests carry their own deterministic generator.
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Self {
        Mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn run_all<T: Send>(world: usize, f: impl Fn(vp_collectives::Collective) -> T + Sync) -> Vec<T> {
    let handles = CollectiveGroup::new(world);
    std::thread::scope(|scope| {
        handles
            .into_iter()
            .map(|h| scope.spawn(|| f(h)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("collective thread"))
            .collect()
    })
}

#[test]
fn independent_groups_do_not_interfere() {
    // Two collective groups used concurrently by interleaved threads (the
    // per-stream communicator pattern of §6.1) must never cross-talk.
    let world = 4;
    let group_a = CollectiveGroup::new(world);
    let group_b = CollectiveGroup::new(world);
    std::thread::scope(|scope| {
        for (a, b) in group_a.into_iter().zip(group_b) {
            scope.spawn(move || {
                for round in 0..200 {
                    let mut x = vec![(a.rank() + round) as f32];
                    let mut y = vec![(b.rank() * 100 + round) as f32];
                    // Alternate groups in different orders per parity to
                    // stress the rendezvous generations.
                    if round % 2 == 0 {
                        a.all_reduce(&mut x, ReduceOp::Sum).unwrap();
                        b.all_reduce(&mut y, ReduceOp::Sum).unwrap();
                    } else {
                        b.all_reduce(&mut y, ReduceOp::Sum).unwrap();
                        a.all_reduce(&mut x, ReduceOp::Sum).unwrap();
                    }
                    assert_eq!(x[0], (6 + 4 * round) as f32);
                    assert_eq!(y[0], (600 + 4 * round) as f32);
                }
            });
        }
    });
}

#[test]
fn all_reduce_matches_sequential_reduction() {
    for seed in 0..32u64 {
        let mut rng = Mix::new(seed);
        let world = rng.range(1, 6);
        let len = rng.range(1, 20);
        let salt = rng.range(0, 1000);
        let use_max = rng.bool();
        // Deterministic per-rank payloads.
        let payload =
            |rank: usize, i: usize| -> f32 { ((salt + rank * 31 + i * 7) % 100) as f32 - 50.0 };
        let op = if use_max {
            ReduceOp::Max
        } else {
            ReduceOp::Sum
        };
        let expected: Vec<f32> = (0..len)
            .map(|i| {
                (0..world)
                    .map(|r| payload(r, i))
                    .fold(op.identity(), |a, b| if use_max { a.max(b) } else { a + b })
            })
            .collect();
        let results = run_all(world, |c| {
            let mut data: Vec<f32> = (0..len).map(|i| payload(c.rank(), i)).collect();
            c.all_reduce(&mut data, op).unwrap();
            data
        });
        for r in results {
            assert_eq!(&r, &expected, "seed {seed}");
        }
    }
}

#[test]
fn many_rounds_never_cross_talk() {
    for seed in 100..132u64 {
        let mut rng = Mix::new(seed);
        let world = rng.range(2, 5);
        let rounds = rng.range(1, 30);
        let results = run_all(world, |c| {
            let mut outputs = Vec::new();
            for round in 0..rounds {
                let mut data = vec![(c.rank() * 10 + round) as f32];
                c.all_reduce(&mut data, ReduceOp::Sum).unwrap();
                outputs.push(data[0]);
            }
            outputs
        });
        for r in results {
            for (round, v) in r.iter().enumerate() {
                let expected: f32 = (0..world).map(|rank| (rank * 10 + round) as f32).sum();
                assert_eq!(*v, expected, "seed {seed}");
            }
        }
    }
}

#[test]
fn broadcast_from_any_root() {
    for seed in 200..232u64 {
        let mut rng = Mix::new(seed);
        let world = rng.range(1, 6);
        let root = rng.range(0, 6) % world;
        let len = rng.range(1, 10);
        let results = run_all(world, |c| {
            let mut data = if c.rank() == root {
                (0..len).map(|i| i as f32 + 0.5).collect()
            } else {
                vec![0.0; len]
            };
            c.broadcast(&mut data, root).unwrap();
            data
        });
        for r in results {
            assert_eq!(
                r,
                (0..len).map(|i| i as f32 + 0.5).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn p2p_tagged_delivery_is_order_independent() {
    for seed in 300..332u64 {
        let mut rng = Mix::new(seed);
        let perm_seed = rng.next_u64() % 1000;
        let n_msgs = rng.range(1, 12);
        let mut eps = P2pNetwork::new(2);
        let mut receiver = eps.pop().unwrap();
        let sender = eps.pop().unwrap();
        // Send tags in a pseudo-random order; receive in sorted order.
        let mut tags: Vec<u64> = (0..n_msgs as u64).collect();
        let mut s = perm_seed;
        for i in (1..tags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            tags.swap(i, (s as usize) % (i + 1));
        }
        for &tag in &tags {
            sender
                .send(1, Packet::new(tag, 1, 1, vec![tag as f32]))
                .unwrap();
        }
        for want in 0..n_msgs as u64 {
            let p = receiver.recv_tag(0, want).unwrap();
            assert_eq!(p.data, vec![want as f32], "seed {seed}");
        }
    }
}
