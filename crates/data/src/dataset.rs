//! Megatron-style sample packing and a compact binary token format.
//!
//! A tokenized document stream is concatenated (with an end-of-document
//! token) and cut into fixed `seq_len + 1` windows; window `i` yields
//! inputs `[0..seq_len]` and next-token labels `[1..=seq_len]`. Sample
//! order is shuffled deterministically per epoch, exactly how GPT
//! pretraining dataloaders (including the paper's) iterate.

use std::fmt;

/// One training sample: `seq_len` inputs and their next-token labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Input token ids.
    pub tokens: Vec<usize>,
    /// Next-token labels.
    pub labels: Vec<usize>,
}

/// Errors from the dataset layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Not enough tokens to cut even one window.
    TooShort {
        /// Tokens available.
        have: usize,
        /// Tokens needed for one sample.
        need: usize,
    },
    /// The binary blob is malformed.
    BadFormat(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::TooShort { have, need } => {
                write!(f, "token stream too short: {have} tokens, need {need}")
            }
            DataError::BadFormat(msg) => write!(f, "bad token file: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// A packed dataset: fixed-length samples over a token stream.
#[derive(Debug, Clone)]
pub struct PackedDataset {
    stream: Vec<u32>,
    seq_len: usize,
}

impl PackedDataset {
    /// Packs a token stream into `seq_len`-long samples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::TooShort`] if fewer than `seq_len + 1` tokens
    /// are available.
    pub fn new(stream: Vec<u32>, seq_len: usize) -> Result<Self, DataError> {
        if stream.len() < seq_len + 1 {
            return Err(DataError::TooShort {
                have: stream.len(),
                need: seq_len + 1,
            });
        }
        Ok(PackedDataset { stream, seq_len })
    }

    /// Number of non-overlapping samples.
    pub fn len(&self) -> usize {
        (self.stream.len() - 1) / self.seq_len
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sample at `index` in *stream order*.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn sample(&self, index: usize) -> Sample {
        assert!(index < self.len(), "sample index out of range");
        let start = index * self.seq_len;
        let window = &self.stream[start..start + self.seq_len + 1];
        Sample {
            tokens: window[..self.seq_len].iter().map(|&t| t as usize).collect(),
            labels: window[1..].iter().map(|&t| t as usize).collect(),
        }
    }

    /// A deterministic per-epoch permutation of sample indices
    /// (multiplicative-congruential shuffle: full period over `len()` via
    /// search for a coprime stride).
    pub fn epoch_order(&self, epoch: u64) -> Vec<usize> {
        let n = self.len();
        if n <= 1 {
            return (0..n).collect();
        }
        // Find a stride coprime with n, varied by epoch.
        let mut stride = (epoch as usize).wrapping_mul(2654435761) % n;
        loop {
            stride = (stride + 1) % n;
            if stride != 0 && gcd(stride, n) == 1 {
                break;
            }
        }
        let offset = (epoch as usize).wrapping_mul(40503) % n;
        (0..n).map(|i| (offset + i * stride) % n).collect()
    }

    /// The samples of one epoch, shuffled deterministically.
    pub fn epoch(&self, epoch: u64) -> Vec<Sample> {
        self.epoch_order(epoch)
            .into_iter()
            .map(|i| self.sample(i))
            .collect()
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Compact binary serialization of a token stream: an 8-byte magic +
/// vocabulary size, then little-endian `u32` tokens. The offline analogue
/// of Megatron's indexed dataset files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenFile {
    /// Vocabulary size the tokens were produced with.
    pub vocab_size: u32,
    /// The token stream.
    pub tokens: Vec<u32>,
}

const MAGIC: u32 = 0x5650_544B; // "VPTK"

impl TokenFile {
    /// Serializes to the binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 4 * self.tokens.len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.vocab_size.to_le_bytes());
        for &t in &self.tokens {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        buf
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadFormat`] for a truncated or mislabeled blob
    /// or tokens outside the declared vocabulary.
    pub fn from_bytes(data: impl AsRef<[u8]>) -> Result<Self, DataError> {
        let data = data.as_ref();
        if data.len() < 8 {
            return Err(DataError::BadFormat("missing header".into()));
        }
        let word =
            |i: usize| u32::from_le_bytes(data[4 * i..4 * i + 4].try_into().expect("4-byte word"));
        let magic = word(0);
        if magic != MAGIC {
            return Err(DataError::BadFormat(format!("bad magic {magic:#x}")));
        }
        let vocab_size = word(1);
        if !data.len().is_multiple_of(4) {
            return Err(DataError::BadFormat("truncated token payload".into()));
        }
        let words = data.len() / 4;
        let mut tokens = Vec::with_capacity(words - 2);
        for i in 2..words {
            let t = word(i);
            if t >= vocab_size {
                return Err(DataError::BadFormat(format!(
                    "token {t} >= vocab {vocab_size}"
                )));
            }
            tokens.push(t);
        }
        Ok(TokenFile { vocab_size, tokens })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i % 17).collect()
    }

    #[test]
    fn samples_tile_the_stream_with_shifted_labels() {
        let ds = PackedDataset::new(stream(33), 8).unwrap();
        assert_eq!(ds.len(), 4);
        let s = ds.sample(1);
        assert_eq!(s.tokens.len(), 8);
        assert_eq!(&s.tokens[1..], &s.labels[..7]);
        assert_eq!(s.tokens[0] as u32, 8);
    }

    #[test]
    fn too_short_stream_is_rejected() {
        assert!(matches!(
            PackedDataset::new(stream(8), 8),
            Err(DataError::TooShort { .. })
        ));
        assert!(PackedDataset::new(stream(9), 8).is_ok());
    }

    #[test]
    fn epoch_order_is_a_permutation_and_varies_by_epoch() {
        let ds = PackedDataset::new(stream(1000), 9).unwrap();
        let e0 = ds.epoch_order(0);
        let e1 = ds.epoch_order(1);
        let mut sorted = e0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.len()).collect::<Vec<_>>());
        assert_ne!(e0, e1);
        assert_eq!(e0, ds.epoch_order(0));
    }

    #[test]
    fn token_file_round_trips() {
        let tf = TokenFile {
            vocab_size: 300,
            tokens: stream(50),
        };
        let parsed = TokenFile::from_bytes(tf.to_bytes()).unwrap();
        assert_eq!(parsed, tf);
    }

    #[test]
    fn token_file_rejects_corruption() {
        let tf = TokenFile {
            vocab_size: 10,
            tokens: vec![3, 9],
        };
        let mut raw = tf.to_bytes();
        raw[4] = 2; // vocab_size = 2 < tokens
        assert!(matches!(
            TokenFile::from_bytes(raw),
            Err(DataError::BadFormat(_))
        ));
        assert!(TokenFile::from_bytes([1u8, 2, 3]).is_err());
    }

    #[test]
    fn end_to_end_tokenize_and_pack() {
        use crate::bpe::BpeTokenizer;
        use crate::corpus::TextCorpus;
        let corpus = TextCorpus::new(11);
        let text = corpus.text(40);
        let tok = BpeTokenizer::train(&text, 350);
        let ids = tok.encode(&text);
        let ds = PackedDataset::new(ids.clone(), 16).unwrap();
        assert!(ds.len() > 4);
        // Every sample's tokens are in vocabulary.
        for s in ds.epoch(0) {
            assert!(s.tokens.iter().all(|&t| t < tok.vocab_size()));
        }
        // The file format preserves the stream.
        let tf = TokenFile {
            vocab_size: tok.vocab_size() as u32,
            tokens: ids,
        };
        assert_eq!(TokenFile::from_bytes(tf.to_bytes()).unwrap(), tf);
    }
}
