//! Deterministic synthetic text corpus (the offline C4 stand-in).
//!
//! Documents are generated from a small phrase grammar with a seeded RNG:
//! enough lexical structure that BPE finds meaningful merges and a language
//! model has something to learn, fully reproducible from `(seed, index)`.

use vp_tensor::rng::{Rng, StdRng};

const SUBJECTS: &[&str] = &[
    "the pipeline",
    "a device",
    "the scheduler",
    "the model",
    "a microbatch",
    "the vocabulary",
    "the softmax",
    "an embedding",
    "the gradient",
    "a transformer layer",
    "the optimizer",
    "the communicator",
];

const VERBS: &[&str] = &[
    "computes",
    "sends",
    "receives",
    "overlaps",
    "partitions",
    "balances",
    "reduces",
    "schedules",
    "accumulates",
    "broadcasts",
    "synchronizes",
    "defers",
];

const OBJECTS: &[&str] = &[
    "the activations",
    "a barrier",
    "the logits",
    "its weights",
    "the passes",
    "the shards",
    "a building block",
    "the statistics",
    "the loss",
    "the bubbles",
    "the memory",
    "the interval",
];

const MODIFIERS: &[&str] = &[
    "across all devices",
    "in the steady state",
    "during warm-up",
    "with one barrier",
    "without synchronization",
    "per microbatch",
    "on the last stage",
    "in parallel",
    "after the forward pass",
    "before the backward pass",
];

/// A deterministic stream of pseudo-English documents.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    seed: u64,
}

impl TextCorpus {
    /// Creates a corpus with the given seed.
    pub fn new(seed: u64) -> Self {
        TextCorpus { seed }
    }

    /// The document at `index` — a pure function of `(seed, index)`.
    pub fn document(&self, index: u64) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        let sentences = rng.gen_range(3..9usize);
        let mut doc = String::new();
        for s in 0..sentences {
            if s > 0 {
                doc.push(' ');
            }
            let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
            let verb = VERBS[rng.gen_range(0..VERBS.len())];
            let object = OBJECTS[rng.gen_range(0..OBJECTS.len())];
            doc.push_str(subject);
            doc.push(' ');
            doc.push_str(verb);
            doc.push(' ');
            doc.push_str(object);
            if rng.gen_bool(0.6) {
                doc.push(' ');
                doc.push_str(MODIFIERS[rng.gen_range(0..MODIFIERS.len())]);
            }
            doc.push('.');
        }
        doc
    }

    /// Concatenates the first `n` documents (training-text convenience).
    pub fn text(&self, n: u64) -> String {
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&self.document(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_deterministic() {
        let c = TextCorpus::new(7);
        assert_eq!(c.document(0), c.document(0));
        assert_ne!(c.document(0), c.document(1));
    }

    #[test]
    fn documents_look_like_sentences() {
        let c = TextCorpus::new(1);
        let d = c.document(3);
        assert!(d.ends_with('.'));
        assert!(d.split_whitespace().count() >= 9);
        assert!(d.is_ascii());
    }

    #[test]
    fn text_concatenates_documents() {
        let c = TextCorpus::new(2);
        let t = c.text(4);
        assert_eq!(t.lines().count(), 4);
    }
}
