//! Byte-pair encoding: train merges on a corpus, encode/decode losslessly.
//!
//! The base alphabet is the 256 byte values, so any input round-trips; the
//! requested vocabulary size (`256 + number of merges`) is the `V` that the
//! paper sweeps — a larger BPE vocabulary is precisely what inflates the
//! output layer relative to the transformer trunk (Figure 2).

use std::collections::HashMap;

/// A trained byte-pair-encoding tokenizer.
///
/// # Example
///
/// ```
/// use vp_data::BpeTokenizer;
///
/// let tok = BpeTokenizer::train("the pipeline computes the pipeline", 260);
/// let ids = tok.encode("the pipeline");
/// assert_eq!(tok.decode(&ids), "the pipeline");
/// assert!(tok.vocab_size() > 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpeTokenizer {
    /// Learned merges in training order: merging `(a, b) -> 256 + i`.
    merges: Vec<(u32, u32)>,
    /// Merge lookup: `(a, b) -> merged id`.
    merge_of: HashMap<(u32, u32), u32>,
}

impl BpeTokenizer {
    /// Trains a tokenizer on `text`, producing a vocabulary of
    /// `vocab_size` entries (256 bytes + merges). Stops early if the corpus
    /// runs out of repeated pairs.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 256` (the byte alphabet is irreducible).
    pub fn train(text: &str, vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "vocabulary must cover the byte alphabet");
        let mut ids: Vec<u32> = text.bytes().map(u32::from).collect();
        let mut merges = Vec::new();
        let mut merge_of = HashMap::new();
        while merges.len() + 256 < vocab_size {
            // Count adjacent pairs.
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for w in ids.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            // Pick the most frequent pair (ties broken deterministically by
            // the pair value so training is reproducible).
            let Some((&pair, &count)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = 256 + merges.len() as u32;
            merges.push(pair);
            merge_of.insert(pair, new_id);
            ids = Self::apply_merge(&ids, pair, new_id);
        }
        BpeTokenizer { merges, merge_of }
    }

    fn apply_merge(ids: &[u32], pair: (u32, u32), new_id: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            if i + 1 < ids.len() && (ids[i], ids[i + 1]) == pair {
                out.push(new_id);
                i += 2;
            } else {
                out.push(ids[i]);
                i += 1;
            }
        }
        out
    }

    /// The vocabulary size (256 + learned merges).
    pub fn vocab_size(&self) -> usize {
        256 + self.merges.len()
    }

    /// Encodes text by applying the learned merges in training order.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = text.bytes().map(u32::from).collect();
        // Repeatedly merge the earliest-trained applicable pair; training
        // order gives the canonical BPE segmentation.
        loop {
            let mut best: Option<(usize, u32)> = None; // (merge rank, id)
            for w in ids.windows(2) {
                if let Some(&id) = self.merge_of.get(&(w[0], w[1])) {
                    let rank = (id - 256) as usize;
                    if best.map(|(r, _)| rank < r).unwrap_or(true) {
                        best = Some((rank, id));
                    }
                }
            }
            let Some((rank, id)) = best else { break };
            let pair = self.merges[rank];
            ids = Self::apply_merge(&ids, pair, id);
        }
        ids
    }

    /// Decodes token ids back to text (lossless for any `encode` output).
    ///
    /// Unknown ids are skipped; invalid UTF-8 (impossible for round-trips)
    /// is replaced.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(ids.len());
        for &id in ids {
            self.push_bytes(id, &mut bytes);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn push_bytes(&self, id: u32, out: &mut Vec<u8>) {
        if id < 256 {
            out.push(id as u8);
        } else if let Some(&(a, b)) = self.merges.get((id - 256) as usize) {
            self.push_bytes(a, out);
            self.push_bytes(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TextCorpus;

    fn trained(vocab: usize) -> (BpeTokenizer, String) {
        let text = TextCorpus::new(3).text(50);
        (BpeTokenizer::train(&text, vocab), text)
    }

    #[test]
    fn round_trips_training_text() {
        let (tok, text) = trained(320);
        let ids = tok.encode(&text);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn round_trips_unseen_text() {
        let (tok, _) = trained(300);
        let unseen = "completely unrelated bytes: 1234 !@#$ ümlaut";
        assert_eq!(tok.decode(&tok.encode(unseen)), unseen);
    }

    #[test]
    fn merges_compress_the_corpus() {
        let (tok, text) = trained(400);
        let ids = tok.encode(&text);
        assert!(
            ids.len() < text.len() / 2,
            "BPE should compress: {} tokens for {} bytes",
            ids.len(),
            text.len()
        );
        assert!(tok.vocab_size() > 256);
    }

    #[test]
    fn larger_vocab_compresses_more() {
        let text = TextCorpus::new(4).text(60);
        let small = BpeTokenizer::train(&text, 300).encode(&text).len();
        let large = BpeTokenizer::train(&text, 500).encode(&text).len();
        assert!(large < small, "large vocab {large} vs small {small}");
    }

    #[test]
    fn training_is_deterministic() {
        let text = TextCorpus::new(5).text(30);
        let a = BpeTokenizer::train(&text, 320);
        let b = BpeTokenizer::train(&text, 320);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_stay_below_vocab_size() {
        let (tok, text) = trained(350);
        let ids = tok.encode(&text);
        assert!(ids.iter().all(|&id| (id as usize) < tok.vocab_size()));
    }

    #[test]
    #[should_panic(expected = "byte alphabet")]
    fn rejects_tiny_vocab() {
        let _ = BpeTokenizer::train("abc", 100);
    }
}
