#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Dataset substrate for the Vocabulary Parallelism reproduction.
//!
//! The paper's artifact trains on a customized C4 dataset pulled from
//! Hugging Face; this crate provides the offline equivalent of that data
//! path, end to end:
//!
//! * [`corpus`] — a deterministic synthetic *text* corpus (pseudo-English
//!   documents from a seeded generator), standing in for C4.
//! * [`bpe`] — a real byte-pair-encoding tokenizer: train merges on a
//!   corpus, encode/decode losslessly. Vocabulary size is a training
//!   parameter, mirroring how the paper sweeps `V` (a larger BPE
//!   vocabulary is exactly what makes the output layer dominate).
//! * [`dataset`] — Megatron-style sample packing: a tokenized stream cut
//!   into fixed `seq_len + 1` windows with deterministic shuffling, plus a
//!   compact binary on-disk format ([`dataset::TokenFile`]).
//!
//! The `vp-runtime` trainers consume [`dataset::PackedDataset`] batches
//! through the same `(tokens, labels)` shape as their synthetic corpus.

pub mod bpe;
pub mod corpus;
pub mod dataset;

pub use bpe::BpeTokenizer;
pub use corpus::TextCorpus;
pub use dataset::{PackedDataset, Sample, TokenFile};
