#!/usr/bin/env bash
# Local CI gate: build, test, lint and format-check the whole workspace.
# Runs fully offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repro kernels --json smoke run"
cargo run -p vp-bench --release --bin repro -- kernels --json --quick

echo "==> BENCH_kernels.json structure check"
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'PY'
import json

with open("BENCH_kernels.json") as f:
    doc = json.load(f)

assert doc["bench"] == "kernels", doc.get("bench")
assert doc["threads"] >= 1 and doc["cores"] >= 1
kernels = {k["name"]: k for k in doc["kernels"]}
expected = {"matmul_nn", "matmul_nt", "matmul_tn", "softmax_rows",
            "local_softmax", "layer_norm", "gelu"}
missing = expected - kernels.keys()
assert not missing, f"kernels missing from BENCH_kernels.json: {missing}"
for name, k in kernels.items():
    assert k["serial_us"] > 0, f"{name}: no serial timing"
    assert k["threaded_us"] > 0, f"{name}: no threaded timing"
    assert k["bitwise_identical"] is True, f"{name}: threaded output diverged"
print(f"BENCH_kernels.json OK: {len(kernels)} kernels, serial+threaded covered, "
      f"all bitwise identical ({doc['threads']} threads on {doc['cores']} cores)")
PY
else
    # Fallback when python3 is unavailable: structural greps.
    grep -q '"bench": "kernels"' BENCH_kernels.json
    for k in matmul_nn matmul_nt matmul_tn softmax_rows local_softmax layer_norm gelu; do
        grep -q "\"name\": \"$k\"" BENCH_kernels.json || {
            echo "missing kernel $k in BENCH_kernels.json" >&2
            exit 1
        }
    done
    grep -q '"serial_us"' BENCH_kernels.json
    grep -q '"threaded_us"' BENCH_kernels.json
    if grep -q '"bitwise_identical": false' BENCH_kernels.json; then
        echo "threaded kernel output diverged from serial" >&2
        exit 1
    fi
    echo "BENCH_kernels.json OK (grep check)"
fi

echo "CI gate passed."
