#!/usr/bin/env bash
# Local CI gate, fail-fast ordered: the cheap source-level checks (format,
# unsafe audit) run before anything compiles, lint (clippy) runs before the
# release build it shares artifacts with, and the measured-run gates come
# last: the static verification sweep (run twice, byte-identical JSON),
# the static-vs-model differential soundness gate (every grid schedule and
# seeded mutant must get the same hang/clean verdict from the
# happens-before analyses and the exhaustive pass-VM model checker, within
# a fixed explored-state budget), the PP x TP crossover sweep (grid
# configs verified by vp-check +
# the grid lints, tp=1 column bitwise equal to the 1D simulation), kernel
# smoke benchmark (with the packed-GEMM nt/nn regression gate, GFLOP/s
# floors for the SIMD matmul/GELU paths, and the dispatch-honesty gate:
# serial on one effective worker, and a chosen threaded path must not lose
# to serial), bitwise training determinism, the buffer-arena train bench
# (steady-state recycling + pooled-vs-fresh numerics), the serving bench
# (open-loop decode SLO floors + greedy-decode bitwise equivalence, the
# paged-KV leak gate, the chunked-prefill tail ceiling, the split-batch
# overlap throughput gate, and double-run determinism modulo wall-clock
# fields), Chrome-trace schema checks (simulated and measured), and the
# sim-vs-measured timeline drift gate.
# Runs fully offline (the workspace has no external dependencies).
# JSON artifacts land in target/ so the working tree stays clean.
# A per-stage wall-time summary prints at the end.
set -euo pipefail
cd "$(dirname "$0")"

STAGE_NAMES=()
STAGE_SECS=()

# stage <name> <command...> — announce, run, and record wall time.
stage() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - t0)))
}

stage_summary() {
    echo
    echo "---- stage wall times ----"
    local i total=0
    for i in "${!STAGE_NAMES[@]}"; do
        printf '%5ds  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '%5ds  total\n' "$total"
}

# --- source-level checks: no compilation needed, fail in seconds -----------

fmt_check() {
    cargo fmt --check
}

unsafe_audit() {
    # Every crate but the two audited ones carries #![forbid(unsafe_code)];
    # this catches a crate that drops the attribute or a new unsafe block
    # sneaking in elsewhere. Token match (\bunsafe\b), not 'unsafe ': the
    # old pattern missed `unsafe{`, `unsafe(` and other spellings the
    # compiler accepts.
    local allowed="crates/tensor/src/pool.rs crates/trace/src/buffer.rs"
    local found f
    found=$(grep -rln --include='*.rs' -E '\bunsafe\b' src crates | sort || true)
    for f in $found; do
        case " $allowed " in
            *" $f "*) ;;
            *)
                echo "unsafe code outside the audited allowlist: $f" >&2
                exit 1
                ;;
        esac
    done
    echo "unsafe audit OK: confined to [$allowed]"
}

# --- lint, build, test -----------------------------------------------------

clippy_lint() {
    cargo clippy --workspace --all-targets --release -- -D warnings \
        -D clippy::needless_pass_by_value \
        -D clippy::redundant_clone \
        -D clippy::semicolon_if_nothing_returned
}

build_release() {
    cargo build --workspace --release
}

test_release() {
    cargo test --workspace --release --quiet
}

# --- measured-run gates ----------------------------------------------------

check_sweep() {
    # Run twice: the diagnostic order is contractually deterministic
    # (sorted by code, device, slot), so the JSON must be byte-identical.
    cargo run -p vp-bench --release --bin repro -- check --json --out target/CHECK.json
    cargo run -p vp-bench --release --bin repro -- check --json --out target/CHECK_run2.json >/dev/null
    if ! cmp -s target/CHECK.json target/CHECK_run2.json; then
        echo "repro check --json is not deterministic: two runs differ" >&2
        diff target/CHECK.json target/CHECK_run2.json >&2 || true
        exit 1
    fi
    grep -q '"failing": 0' target/CHECK.json || {
        echo "vp-check sweep reported failing cases" >&2
        exit 1
    }
    grep -q '"name": "decode-pipeline p=2 b=2"' target/CHECK.json || {
        echo "vp-check sweep is missing the decode-pipeline family" >&2
        exit 1
    }
    grep -q '"name": "decode-pipeline-overlap p=2 b=2"' target/CHECK.json || {
        echo "vp-check sweep is missing the overlapped decode family" >&2
        exit 1
    }
    echo "CHECK.json OK: zero failing cases, decode families present, byte-identical reruns"
}

modelcheck_gate() {
    # The soundness gate: every sweep-grid schedule plus hundreds of
    # seeded mutants must get the same hang/clean verdict from the static
    # happens-before analyses and the exhaustive pass-VM model checker.
    # Also run twice — fixed seeds, no wall-clock in the output — and
    # require byte-identical JSON.
    cargo run -p vp-bench --release --bin repro -- modelcheck --json --out target/MODELCHECK.json
    cargo run -p vp-bench --release --bin repro -- modelcheck --json --out target/MODELCHECK_run2.json >/dev/null
    if ! cmp -s target/MODELCHECK.json target/MODELCHECK_run2.json; then
        echo "repro modelcheck --json is not deterministic: two runs differ" >&2
        diff target/MODELCHECK.json target/MODELCHECK_run2.json >&2 || true
        exit 1
    fi
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json

with open("target/MODELCHECK.json") as f:
    doc = json.load(f)

assert doc["disagreements"] == 0, \
    f"{doc['disagreements']} static-vs-model disagreement(s) — soundness bug"
assert doc["mutants"] >= 240, f"mutant corpus too small: {doc['mutants']}"
assert doc["over_budget"] == 0, \
    f"{doc['over_budget']} case(s) exceeded the explored-state budget"
results = doc["results"]
assert len(results) == doc["cases"] and results, "results/cases mismatch"
for r in results:
    assert r["outcome"] in ("agree_clean", "agree_deadlock",
                            "static_rejected", "out_of_model"), \
        f"{r['name']}: {r['outcome']}"
    assert r["states"] <= r["budget"], \
        f"{r['name']}: {r['states']} states over budget {r['budget']}"
# Pristine grid schedules are all clean; deadlocks come only from mutants.
grid = [r for r in results if not r["mutant"]]
assert len(grid) == doc["grid_cases"]
assert all(r["outcome"] == "agree_clean" for r in grid), \
    "a pristine grid schedule is not agree_clean"
# The PR-8 regression class is represented and killed by both oracles:
# some un-hoisted-InputF mutant deadlocks with VP0017 on the static side.
unhoist = [r for r in results
           if r["name"].startswith("mutant/unhoist-inputf")
           and r["outcome"] == "agree_deadlock"
           and "VP0017" in r["static_codes"]]
assert unhoist, "no un-hoisted InputF mutant was killed as VP0017"
# The split-batch overlap regression class: an inconsistent S/T split
# across devices deadlocks, and both oracles agree (VP0001 cycle).
missplit = [r for r in results
            if r["name"].startswith("mutant/missplit-overlap")
            and r["outcome"] == "agree_deadlock"
            and "VP0001" in r["static_codes"]]
assert missplit, "no mis-split overlap mutant was killed as VP0001"
deadlocks = sum(1 for r in results if r["outcome"] == "agree_deadlock")
print(f"MODELCHECK.json OK: {doc['cases']} cases ({doc['grid_cases']} grid + "
      f"{doc['mutants']} mutants), 0 disagreements, {deadlocks} agreed deadlocks "
      f"({len(unhoist)} VP0017 unhoist kills, {len(missplit)} VP0001 mis-split "
      f"kills), max {doc['max_states']} states, all within budget")
PY
    else
        grep -q '"disagreements": 0' target/MODELCHECK.json || {
            echo "modelcheck reported disagreements" >&2
            exit 1
        }
        grep -q '"over_budget": 0' target/MODELCHECK.json || {
            echo "modelcheck exceeded an explored-state budget" >&2
            exit 1
        }
        if grep -q '"outcome": "disagree"' target/MODELCHECK.json; then
            echo "modelcheck has a disagreeing case" >&2
            exit 1
        fi
        grep -q '"name": "mutant/missplit-overlap' target/MODELCHECK.json || {
            echo "no mis-split overlap mutants in the corpus" >&2
            exit 1
        }
        # Mutant floor via awk (the summary counter is on its own line).
        awk '
            /"mutants":/ {
                if (match($0, /[0-9]+/)) n = substr($0, RSTART, RLENGTH)
            }
            END {
                if (n == "" || n + 0 < 240) {
                    printf "mutant corpus too small: %s\n", n > "/dev/stderr"
                    exit 1
                }
                printf "mutant corpus: %s\n", n
            }' target/MODELCHECK.json
        echo "MODELCHECK.json OK (grep check)"
    fi
}

tpsweep_gate() {
    cargo run -p vp-bench --release --bin repro -- tpsweep --json --out target/TPSWEEP.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json

with open("target/TPSWEEP.json") as f:
    doc = json.load(f)

assert doc["bench"] == "tpsweep", doc.get("bench")
total = doc["total_devices"]
assert total >= 4, total
series = doc["series"]
assert series, "no sweep series"
best = {}
for s in series:
    key = (s["method"], s["sync"], s["microbatches"])
    points = s["points"]
    assert points, f"{key}: no factorizations"
    # Every factorization passes vp-check plus the grid lints.
    for p in points:
        assert p["pp"] * p["tp"] == total, f"{key}: {p['pp']}x{p['tp']} != {total}"
        assert p["check_clean"] is True, \
            f"{key}: pp={p['pp']} tp={p['tp']} failed static verification"
    # The tp = 1 column is the 1D simulation, bitwise (the degeneracy
    # contract of the grid refactor).
    tp1 = [p for p in points if p["tp"] == 1]
    assert len(tp1) == 1, f"{key}: expected exactly one tp=1 point"
    assert tp1[0]["tp1_bitwise_match"] is True, \
        f"{key}: tp=1 grid run diverged bitwise from the flat 1D run"
    best[key] = s["best_tp"]
# PTD-style crossover: with few microbatches the fill bubble dominates
# and the tensor axis wins; with many the deep pipeline wins.
assert best[("vocab-2", "all-reduce", 4)] > 1, \
    "bubble-bound sweep did not favor TP"
assert best[("vocab-2", "all-reduce", 128)] == 1, \
    "compute-bound sweep did not favor the deep pipeline"
print(f"TPSWEEP.json OK: {len(series)} series on {total} devices, all verified, "
      f"tp=1 columns bitwise identical, crossover flips with microbatch count")
PY
    else
        grep -q '"bench": "tpsweep"' target/TPSWEEP.json
        if grep -q '"check_clean": false' target/TPSWEEP.json; then
            echo "tpsweep: a grid configuration failed static verification" >&2
            exit 1
        fi
        if grep -q '"tp1_bitwise_match": false' target/TPSWEEP.json; then
            echo "tpsweep: a tp=1 grid run diverged bitwise from the 1D run" >&2
            exit 1
        fi
        grep -q '"tp1_bitwise_match": true' target/TPSWEEP.json
        echo "TPSWEEP.json OK (grep check; crossover gate needs python3)"
    fi
}

kernels_gate() {
    cargo run -p vp-bench --release --bin repro -- kernels --json --quick --out target/BENCH_kernels.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json

with open("target/BENCH_kernels.json") as f:
    doc = json.load(f)

assert doc["bench"] == "kernels", doc.get("bench")
assert doc["threads"] >= 1 and doc["cores"] >= 1
assert doc["effective_threads"] == max(1, min(doc["threads"], doc["cores"])), \
    "effective_threads is not min(threads, cores)"
kernels = {k["name"]: k for k in doc["kernels"]}
expected = {"matmul_nn", "matmul_nt", "matmul_tn", "softmax_rows",
            "local_softmax", "layer_norm", "gelu"}
missing = expected - kernels.keys()
assert not missing, f"kernels missing from BENCH_kernels.json: {missing}"
for name, k in kernels.items():
    assert k["serial_us"] > 0, f"{name}: no serial timing"
    assert k["threaded_us"] > 0, f"{name}: no threaded timing"
    assert k["bitwise_identical"] is True, f"{name}: threaded output diverged"
    assert k["serial_gflops"] > 0, f"{name}: no serial throughput"
    assert k["threaded_gflops"] > 0, f"{name}: no threaded throughput"
    assert k["path"] in ("serial", "threaded"), f"{name}: bad path {k['path']!r}"
    # Dispatch honesty: on one effective worker the pool must never be
    # chosen (the old bench forced 4 workers onto 1 core and recorded
    # every kernel "threaded" with speedup < 1).
    if doc["effective_threads"] == 1:
        assert k["path"] == "serial", \
            f"{name}: dispatched to the pool with one effective worker"
    # And when the pool is chosen it must win: a threaded path that loses
    # to serial (beyond 5% timer noise) means the heuristic picked the
    # slower path.
    if k["path"] == "threaded":
        assert k["speedup"] >= 0.95, \
            f"{name}: threaded path chosen but slower than serial " \
            f"(speedup {k['speedup']:.3f})"
# Packed-GEMM regression gate: the transposed layout must stay within
# 1.5x of the plain layout (the packing de-strides B^T; pre-packing it
# regressed nt to ~4.4x nn).
nt_over_nn = kernels["matmul_nt"]["serial_us"] / kernels["matmul_nn"]["serial_us"]
assert nt_over_nn <= 1.5, \
    f"matmul_nt serial is {nt_over_nn:.2f}x matmul_nn (gate: 1.5x)"
# Throughput floors (~1/3 of the measured serial rates on the reference
# box: matmul ~35 GFLOP/s with the arch-tuned microkernel, GELU ~6 with
# the polynomial tanh). A drop below these means the SIMD paths stopped
# vectorizing, not machine noise.
mm_floor, gelu_floor = 10.0, 2.0
assert kernels["matmul_nn"]["serial_gflops"] >= mm_floor, \
    f"matmul_nn serial {kernels['matmul_nn']['serial_gflops']:.2f} GFLOP/s " \
    f"under the {mm_floor} floor"
assert kernels["gelu"]["serial_gflops"] >= gelu_floor, \
    f"gelu serial {kernels['gelu']['serial_gflops']:.2f} GFLOP/s " \
    f"under the {gelu_floor} floor"
print(f"BENCH_kernels.json OK: {len(kernels)} kernels, serial+threaded covered, "
      f"all bitwise identical, nt/nn = {nt_over_nn:.2f}, "
      f"matmul {kernels['matmul_nn']['serial_gflops']:.1f} / "
      f"gelu {kernels['gelu']['serial_gflops']:.1f} GFLOP/s over floors "
      f"({doc['threads']} threads, {doc['cores']} cores, "
      f"{doc['effective_threads']} effective)")
PY
    else
        # Fallback when python3 is unavailable: structural greps.
        grep -q '"bench": "kernels"' target/BENCH_kernels.json
        local k
        for k in matmul_nn matmul_nt matmul_tn softmax_rows local_softmax layer_norm gelu; do
            grep -q "\"name\": \"$k\"" target/BENCH_kernels.json || {
                echo "missing kernel $k in BENCH_kernels.json" >&2
                exit 1
            }
        done
        grep -q '"serial_us"' target/BENCH_kernels.json
        grep -q '"threaded_us"' target/BENCH_kernels.json
        grep -q '"serial_gflops"' target/BENCH_kernels.json
        grep -q '"path"' target/BENCH_kernels.json
        if grep -q '"bitwise_identical": false' target/BENCH_kernels.json; then
            echo "threaded kernel output diverged from serial" >&2
            exit 1
        fi
        # nt/nn regression, GFLOP/s floors, and the dispatch-honesty gate
        # (threaded path must not lose to serial) via awk.
        awk '
            /"name": "matmul_nn"/ { if (match($0, /"serial_us": [0-9.]+/))
                nn = substr($0, RSTART + 14, RLENGTH - 14) }
            /"name": "matmul_nt"/ { if (match($0, /"serial_us": [0-9.]+/))
                nt = substr($0, RSTART + 14, RLENGTH - 14) }
            /"name": "matmul_nn"/ { if (match($0, /"serial_gflops": [0-9.]+/))
                mmf = substr($0, RSTART + 18, RLENGTH - 18) }
            /"name": "gelu"/ { if (match($0, /"serial_gflops": [0-9.]+/))
                gf = substr($0, RSTART + 18, RLENGTH - 18) }
            /"path": "threaded"/ {
                if (match($0, /"speedup": [0-9.]+/)) {
                    sp = substr($0, RSTART + 11, RLENGTH - 11)
                    if (sp < 0.95) {
                        printf "threaded path chosen but slower than serial (speedup %.3f)\n", sp > "/dev/stderr"
                        exit 1
                    }
                }
            }
            END {
                if (nn == "" || nt == "") { print "missing matmul timings" > "/dev/stderr"; exit 1 }
                if (nt / nn > 1.5) {
                    printf "matmul_nt serial is %.2fx matmul_nn (gate: 1.5x)\n", nt / nn > "/dev/stderr"
                    exit 1
                }
                if (mmf == "" || mmf < 10.0) {
                    printf "matmul_nn serial %.2f GFLOP/s under the 10.0 floor\n", mmf > "/dev/stderr"
                    exit 1
                }
                if (gf == "" || gf < 2.0) {
                    printf "gelu serial %.2f GFLOP/s under the 2.0 floor\n", gf > "/dev/stderr"
                    exit 1
                }
                printf "nt/nn = %.2f, matmul %.1f / gelu %.1f GFLOP/s over floors\n", nt / nn, mmf, gf
            }' target/BENCH_kernels.json
        echo "BENCH_kernels.json OK (grep check)"
    fi
}

determinism_gate() {
    VP_THREADS=4 cargo run --release --example train_tiny_gpt > target/determinism_run1.txt
    VP_THREADS=4 cargo run --release --example train_tiny_gpt > target/determinism_run2.txt
    if ! diff -q target/determinism_run1.txt target/determinism_run2.txt >/dev/null; then
        echo "training is not deterministic: two identical runs diverged" >&2
        diff target/determinism_run1.txt target/determinism_run2.txt >&2 || true
        exit 1
    fi
    echo "determinism OK: both runs byte-identical (losses included)"
}

trainbench_gate() {
    cargo run -p vp-bench --release --bin repro -- trainbench --json --quick --out target/BENCH_train.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
import math

with open("target/BENCH_train.json") as f:
    doc = json.load(f)

assert doc["bench"] == "train", doc.get("bench")
assert doc["iterations"] >= 2, doc.get("iterations")
cfg = doc["config"]
for key in ("layers", "hidden", "seq_len", "vocab", "microbatches"):
    assert cfg[key] > 0, f"config.{key} missing or zero"
schedules = {s["name"]: s for s in doc["schedules"]}
expected = {"vocab-2-1f1b", "zb-vocab-2"}
missing = expected - schedules.keys()
assert not missing, f"schedules missing from BENCH_train.json: {missing}"
for name, s in schedules.items():
    assert math.isfinite(s["final_loss"]), f"{name}: loss diverged"
    # Arena numerics contract: pooled == fresh, bitwise.
    assert s["pooled_bitwise_identical"] is True, \
        f"{name}: pooled losses diverged from fresh-allocation losses"
    assert len(s["steady_iter_us"]) == doc["iterations"], f"{name}: missing iteration timings"
    assert all(w > 0 for w in s["steady_iter_us"]), f"{name}: non-positive iteration time"
    assert s["median_steady_iter_us"] > 0, f"{name}: no median iteration time"
    cold, steady = s["cold"], s["steady"]
    assert cold["fresh"] > 0, f"{name}: cold run never allocated — counters broken"
    # Steady-state allocation budget: a warmed pool must serve (nearly)
    # every request from recycled buffers.
    assert steady["reuse"] > 0, f"{name}: steady run never recycled"
    assert steady["reuse_ratio"] >= 0.9, \
        f"{name}: steady reuse ratio {steady['reuse_ratio']:.3f} < 0.9"
    assert steady["fresh"] <= max(64, 0.01 * steady["reuse"]), \
        f"{name}: steady run allocated {steady['fresh']} fresh buffers"
    print(f"{name}: median iter {s['median_steady_iter_us']:.0f} us, "
          f"steady fresh {steady['fresh']} / reuse {steady['reuse']} "
          f"(ratio {steady['reuse_ratio']:.3f}), pooled bitwise identical")
print("BENCH_train.json OK")
PY
    else
        grep -q '"bench": "train"' target/BENCH_train.json
        grep -q '"name": "vocab-2-1f1b"' target/BENCH_train.json
        grep -q '"name": "zb-vocab-2"' target/BENCH_train.json
        grep -q '"median_steady_iter_us"' target/BENCH_train.json
        if grep -q '"pooled_bitwise_identical": false' target/BENCH_train.json; then
            echo "pooled losses diverged from fresh-allocation losses" >&2
            exit 1
        fi
        # Reuse-ratio gate via awk on each schedule's steady counters.
        awk '
            /"steady": \{/ {
                line = $0
                sub(/.*"steady": \{/, "", line)
                if (match(line, /"reuse_ratio": [0-9.]+/)) {
                    r = substr(line, RSTART + 15, RLENGTH - 15)
                    n += 1
                    if (r < 0.9) {
                        printf "steady reuse ratio %.3f < 0.9\n", r > "/dev/stderr"
                        exit 1
                    }
                }
            }
            END {
                if (n < 2) { print "missing steady arena counters" > "/dev/stderr"; exit 1 }
                printf "steady reuse ratios OK (%d schedules)\n", n
            }' target/BENCH_train.json
        echo "BENCH_train.json OK (grep check)"
    fi
}

servebench_gate() {
    # Two runs: the token streams, series set, request accounting and the
    # leak counter are deterministic (fixed seeds), while the
    # wall-clock-derived fields (throughput, latency quantiles, occupancy,
    # step count, arena traffic) are not — so the determinism gate
    # compares the two documents with the volatile fields stripped.
    cargo run -p vp-bench --release --bin repro -- servebench --json --quick --out target/BENCH_serve.json
    cargo run -p vp-bench --release --bin repro -- servebench --json --quick --out target/BENCH_serve_run2.json >/dev/null
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$(nproc 2>/dev/null || echo 1)" <<'PY'
import json
import math
import sys

cores = int(sys.argv[1])

VOLATILE = {"tokens_per_sec", "p50_token_latency_ms", "p99_token_latency_ms",
            "batch_occupancy", "steps", "arena"}


def stable(doc):
    return {**{k: v for k, v in doc.items() if k != "pipelines"},
            "pipelines": [{k: v for k, v in p.items() if k not in VOLATILE}
                          for p in doc["pipelines"]]}


with open("target/BENCH_serve.json") as f:
    doc = json.load(f)
with open("target/BENCH_serve_run2.json") as f:
    run2 = json.load(f)
assert stable(doc) == stable(run2), \
    "servebench --json is not deterministic modulo wall-clock fields"

assert doc["bench"] == "serve", doc.get("bench")
cfg = doc["config"]
for key in ("layers", "hidden", "seq_len", "vocab", "max_batch", "top_k",
            "kv_block", "prefill_chunk"):
    assert cfg[key] > 0, f"config.{key} missing or zero"
wl = doc["workload"]
assert wl["requests"] > 0 and wl["rate_per_sec"] > 0, wl
# The serving correctness contract: greedy decode through the pipelined,
# paged-KV, vocabulary-sharded engine is bitwise equal to the
# single-device full-context reference — at every pipeline depth, with
# and without the split-batch sampling-barrier overlap.
assert doc["greedy_matches_reference"] is True, \
    "greedy decode diverged from the single-device reference"
pipelines = {p["name"]: p for p in doc["pipelines"]}
expected = {"pp1", "pp2", "pp4", "pp1-ov", "pp2-ov", "pp4-ov"}
missing = expected - pipelines.keys()
assert not missing, f"pipelines missing from BENCH_serve.json: {missing}"
for name, p in pipelines.items():
    assert p["greedy_matches_reference"] is True, f"{name}: diverged"
    assert p["requests"] == wl["requests"], f"{name}: dropped requests"
    assert p["tokens"] > 0 and p["steps"] > 0, f"{name}: served nothing"
    # SLO floors: positive generation throughput, finite tail latency.
    assert p["tokens_per_sec"] > 0, f"{name}: zero throughput"
    p50, p99 = p["p50_token_latency_ms"], p["p99_token_latency_ms"]
    assert p50 is not None and p99 is not None, f"{name}: missing latency"
    assert math.isfinite(p99) and p99 > 0, f"{name}: p99 not finite/positive"
    assert p99 >= p50 > 0, f"{name}: quantiles inverted (p50 {p50}, p99 {p99})"
    # Chunked prefill bounds the tail: no decode step carries a whole
    # long prompt, so the quantile ratio stays within the SLO ceiling.
    assert p99 / p50 <= 6.0, \
        f"{name}: p99/p50 = {p99 / p50:.2f} blew the chunked-prefill ceiling"
    assert 0 < p["batch_occupancy"] <= 1, f"{name}: bad occupancy"
    # Paged-KV leak gate: outstanding arena buffers returned exactly to
    # the post-warm-up baseline — every retirement freed its blocks.
    assert p["kv_leaked"] == 0, \
        f"{name}: retirement leaked {p['kv_leaked']} arena buffers"
    # KV blocks come from the warmed buffer arena: the measured run must
    # recycle, not allocate.
    assert p["arena"]["reuse_ratio"] >= 0.5, \
        f"{name}: serve-path arena reuse ratio {p['arena']['reuse_ratio']:.3f} < 0.5"
    print(f"{name}: {p['tokens_per_sec']:.0f} tok/s, "
          f"p50 {p50:.3f} ms / p99 {p99:.3f} ms, "
          f"occupancy {p['batch_occupancy']:.2f}, "
          f"reuse {p['arena']['reuse_ratio']:.3f}, kv_leaked 0, greedy bitwise OK")
# Split-batch overlap gate: both modes serve identical streams (same
# seeds), so the series are directly comparable. With real parallelism
# the overlapped barrier must not lose to the inline one; on a single
# core (and at pp1, where the all-gather is a no-op and there is nothing
# to hide) the stream handoff is pure overhead — allow 5%.
for d in (1, 2, 4):
    off, ov = pipelines[f"pp{d}"], pipelines[f"pp{d}-ov"]
    ratio = ov["tokens_per_sec"] / off["tokens_per_sec"]
    floor = 1.0 if cores > 1 and d > 1 else 0.95
    assert ratio >= floor, \
        f"pp{d}-ov throughput is {ratio:.3f}x the inline barrier (floor {floor})"
    print(f"pp{d} overlap ratio {ratio:.3f} (floor {floor})")
print("BENCH_serve.json OK")
PY
    else
        # Fallback when python3 is unavailable: structural greps (the
        # filtered double-run comparison and the overlap throughput gate
        # need python3).
        grep -q '"bench": "serve"' target/BENCH_serve.json
        local p
        for p in pp1 pp2 pp4 pp1-ov pp2-ov pp4-ov; do
            grep -q "\"name\": \"$p\"" target/BENCH_serve.json || {
                echo "missing pipeline $p in BENCH_serve.json" >&2
                exit 1
            }
        done
        if grep -q '"greedy_matches_reference": false' target/BENCH_serve.json; then
            echo "greedy decode diverged from the single-device reference" >&2
            exit 1
        fi
        grep -q '"greedy_matches_reference": true' target/BENCH_serve.json
        if grep -qE '"kv_leaked": (-|[1-9])' target/BENCH_serve.json; then
            echo "paged-KV leak gate violated: outstanding buffers left the baseline" >&2
            exit 1
        fi
        if grep -qE '"(tokens_per_sec|p99_token_latency_ms)": (null|0\.000)' target/BENCH_serve.json; then
            echo "serving SLO floor violated: zero throughput or non-finite p99" >&2
            exit 1
        fi
        grep -q '"tokens_per_sec"' target/BENCH_serve.json
        grep -q '"p99_token_latency_ms"' target/BENCH_serve.json
        grep -q '"reuse_ratio"' target/BENCH_serve.json
        grep -q '"kv_block"' target/BENCH_serve.json
        grep -q '"prefill_chunk"' target/BENCH_serve.json
        echo "BENCH_serve.json OK (grep check)"
    fi
}

traces_gate() {
    cargo run -p vp-bench --release --bin repro -- trace
    cargo run -p vp-bench --release --bin repro -- timeline --json --out target/TIMELINE.json
    local trace_files="traces/1f1b.trace.json traces/vocab2-1f1b.trace.json \
traces/measured-1f1b.trace.json traces/measured-vocab2-1f1b.trace.json"
    echo "==> Chrome trace schema check"
    if command -v python3 >/dev/null 2>&1; then
        # shellcheck disable=SC2086
        python3 - $trace_files <<'PY'
import json
import sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert events, f"{path}: no duration events"
    rows = {}
    for e in events:
        assert e["dur"] >= 0, f"{path}: negative duration in {e}"
        rows.setdefault((e["pid"], e.get("tid", 0)), []).append(e)
    for (pid, tid), row in rows.items():
        # Events are emitted row-major: per (device, track) timestamps
        # must be monotonic as written.
        ts = [e["ts"] for e in row]
        assert ts == sorted(ts), f"{path}: device {pid} tid {tid} timestamps not monotonic"
        # Pass (compute) rows must not overlap: one device thread runs
        # one pass at a time. tid 0 is the pass track in both exporters.
        if tid == 0:
            end = None
            for e in sorted(row, key=lambda e: e["ts"]):
                if end is not None:
                    assert e["ts"] >= end - 1e-6, \
                        f"{path}: device {pid} passes overlap at ts={e['ts']}"
                end = e["ts"] + e["dur"]
    # Every microbatch appears on the pass track (contiguous 0..max).
    mbs = {e["args"]["microbatch"] for e in events
           if e.get("tid", 0) == 0 and "microbatch" in e.get("args", {})}
    assert mbs, f"{path}: no microbatch-tagged passes"
    assert mbs == set(range(max(mbs) + 1)), f"{path}: microbatches missing: {mbs}"
    assert len(mbs) >= 4, f"{path}: suspiciously few microbatches: {mbs}"
    print(f"{path} OK: {len(events)} events, {len(rows)} rows, "
          f"{len(mbs)} microbatches, monotonic, no pass overlap")
PY
    else
        # Fallback: structural greps over each trace.
        local t mb
        for t in $trace_files; do
            grep -q '"traceEvents"' "$t"
            grep -q '"ph":"X"' "$t"
            for mb in 0 1 2 3; do
                grep -q "\"microbatch\":$mb" "$t" || {
                    echo "$t: microbatch $mb missing" >&2
                    exit 1
                }
            done
            if grep -q '"dur":-' "$t"; then
                echo "$t: negative duration" >&2
                exit 1
            fi
            echo "$t OK (grep check)"
        done
    fi
    echo "==> sim-vs-measured drift gate (TIMELINE.json)"
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'PY'
import json
import math

with open("target/TIMELINE.json") as f:
    doc = json.load(f)

assert doc["bench"] == "timeline", doc.get("bench")
names = [s["name"] for s in doc["schedules"]]
assert "1f1b" in names and "vocab2-1f1b" in names, names
for s in doc["schedules"]:
    name = s["name"]
    assert math.isfinite(s["final_loss"]), f"{name}: loss diverged"
    assert s["makespan_ns"] > 0, f"{name}: empty measured trace"
    assert s["dropped_events"] == 0, f"{name}: {s['dropped_events']} trace events dropped"
    # Loose structural gate: the measured per-pass-kind busy shares must
    # not wander arbitrarily far from the simulated ones (observed ~0.33
    # on this workload; 0.5 catches a broken tracer or cost model, not
    # machine noise).
    assert s["max_divergence"] < 0.5, \
        f"{name}: sim-vs-measured share divergence {s['max_divergence']:.3f} >= 0.5"
    print(f"{name}: max divergence {s['max_divergence']:.3f}, "
          f"bubble sim {s['sim_bubble']:.3f} vs measured {s['mean_bubble']:.3f}, "
          f"comm overlap {s['comm_overlap']:.3f}")
print("timeline drift gate OK")
PY
    else
        grep -q '"bench": "timeline"' target/TIMELINE.json
        grep -q '"name": "1f1b"' target/TIMELINE.json
        grep -q '"name": "vocab2-1f1b"' target/TIMELINE.json
        grep -q '"max_divergence"' target/TIMELINE.json
        if grep -q '"dropped_events": [1-9]' target/TIMELINE.json; then
            echo "trace events were dropped" >&2
            exit 1
        fi
        echo "timeline drift gate OK (grep check; numeric gate needs python3)"
    fi
}

# --- the gate, fail-fast ordered -------------------------------------------

stage "cargo fmt --check" fmt_check
stage "unsafe audit (token match, allowlisted files only)" unsafe_audit
stage "cargo clippy --workspace --all-targets -- -D warnings (+ pedantic subset)" clippy_lint
stage "cargo build --workspace --release" build_release
stage "cargo test --workspace --release" test_release
stage "repro check (static schedule verification sweep, double-run determinism)" check_sweep
stage "repro modelcheck (static-vs-model differential soundness gate)" modelcheck_gate
stage "repro tpsweep (PP x TP crossover) + gate" tpsweep_gate
stage "repro kernels --json + structure/floor gates" kernels_gate
stage "training determinism gate (two identical runs, VP_THREADS=4)" determinism_gate
stage "repro trainbench --json + arena recycling gate" trainbench_gate
stage "repro servebench --json + serving SLO gate" servebench_gate
stage "trace exports + timeline drift gate" traces_gate

stage_summary
echo "CI gate passed."
