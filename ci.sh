#!/usr/bin/env bash
# Local CI gate: build, test, lint and format-check the whole workspace.
# Runs fully offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
