#!/usr/bin/env bash
# Local CI gate: build, test, lint and format-check the whole workspace,
# then run the measured-run gates: kernel smoke benchmark, bitwise
# training determinism, Chrome-trace schema checks (simulated and
# measured), and the sim-vs-measured timeline drift gate.
# Runs fully offline (the workspace has no external dependencies).
# JSON artifacts land in target/ so the working tree stays clean.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace --release"
cargo test --workspace --release --quiet

echo "==> cargo clippy --workspace --all-targets -- -D warnings (+ pedantic subset)"
cargo clippy --workspace --all-targets --release -- -D warnings \
    -D clippy::needless_pass_by_value \
    -D clippy::redundant_clone \
    -D clippy::semicolon_if_nothing_returned

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> unsafe audit (unsafe code is confined to the tensor pool and trace buffer)"
# Every other crate carries #![forbid(unsafe_code)]; this catches a crate
# that drops the attribute or a new unsafe block sneaking in elsewhere.
UNSAFE_ALLOWED="crates/tensor/src/pool.rs crates/trace/src/buffer.rs"
UNSAFE_FOUND=$(grep -rln --include='*.rs' 'unsafe ' src crates | sort || true)
for f in $UNSAFE_FOUND; do
    case " $UNSAFE_ALLOWED " in
        *" $f "*) ;;
        *)
            echo "unsafe code outside the audited allowlist: $f" >&2
            exit 1
            ;;
    esac
done
echo "unsafe audit OK: confined to [$UNSAFE_ALLOWED]"

echo "==> repro check (static schedule verification sweep)"
cargo run -p vp-bench --release --bin repro -- check --json --out target/CHECK.json
grep -q '"failing": 0' target/CHECK.json || {
    echo "vp-check sweep reported failing cases" >&2
    exit 1
}

echo "==> repro kernels --json smoke run"
cargo run -p vp-bench --release --bin repro -- kernels --json --quick --out target/BENCH_kernels.json

echo "==> BENCH_kernels.json structure check"
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'PY'
import json

with open("target/BENCH_kernels.json") as f:
    doc = json.load(f)

assert doc["bench"] == "kernels", doc.get("bench")
assert doc["threads"] >= 1 and doc["cores"] >= 1
kernels = {k["name"]: k for k in doc["kernels"]}
expected = {"matmul_nn", "matmul_nt", "matmul_tn", "softmax_rows",
            "local_softmax", "layer_norm", "gelu"}
missing = expected - kernels.keys()
assert not missing, f"kernels missing from BENCH_kernels.json: {missing}"
for name, k in kernels.items():
    assert k["serial_us"] > 0, f"{name}: no serial timing"
    assert k["threaded_us"] > 0, f"{name}: no threaded timing"
    assert k["bitwise_identical"] is True, f"{name}: threaded output diverged"
print(f"BENCH_kernels.json OK: {len(kernels)} kernels, serial+threaded covered, "
      f"all bitwise identical ({doc['threads']} threads on {doc['cores']} cores)")
PY
else
    # Fallback when python3 is unavailable: structural greps.
    grep -q '"bench": "kernels"' target/BENCH_kernels.json
    for k in matmul_nn matmul_nt matmul_tn softmax_rows local_softmax layer_norm gelu; do
        grep -q "\"name\": \"$k\"" target/BENCH_kernels.json || {
            echo "missing kernel $k in BENCH_kernels.json" >&2
            exit 1
        }
    done
    grep -q '"serial_us"' target/BENCH_kernels.json
    grep -q '"threaded_us"' target/BENCH_kernels.json
    if grep -q '"bitwise_identical": false' target/BENCH_kernels.json; then
        echo "threaded kernel output diverged from serial" >&2
        exit 1
    fi
    echo "BENCH_kernels.json OK (grep check)"
fi

echo "==> training determinism gate (two identical runs, VP_THREADS=4)"
VP_THREADS=4 cargo run --release --example train_tiny_gpt > target/determinism_run1.txt
VP_THREADS=4 cargo run --release --example train_tiny_gpt > target/determinism_run2.txt
if ! diff -q target/determinism_run1.txt target/determinism_run2.txt >/dev/null; then
    echo "training is not deterministic: two identical runs diverged" >&2
    diff target/determinism_run1.txt target/determinism_run2.txt >&2 || true
    exit 1
fi
echo "determinism OK: both runs byte-identical (losses included)"

echo "==> trace exports (simulated + measured) and timeline drift"
cargo run -p vp-bench --release --bin repro -- trace
cargo run -p vp-bench --release --bin repro -- timeline --json --out target/TIMELINE.json

echo "==> Chrome trace schema check"
TRACE_FILES="traces/1f1b.trace.json traces/vocab2-1f1b.trace.json \
traces/measured-1f1b.trace.json traces/measured-vocab2-1f1b.trace.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - $TRACE_FILES <<'PY'
import json
import sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert events, f"{path}: no duration events"
    rows = {}
    for e in events:
        assert e["dur"] >= 0, f"{path}: negative duration in {e}"
        rows.setdefault((e["pid"], e.get("tid", 0)), []).append(e)
    for (pid, tid), row in rows.items():
        # Events are emitted row-major: per (device, track) timestamps
        # must be monotonic as written.
        ts = [e["ts"] for e in row]
        assert ts == sorted(ts), f"{path}: device {pid} tid {tid} timestamps not monotonic"
        # Pass (compute) rows must not overlap: one device thread runs
        # one pass at a time. tid 0 is the pass track in both exporters.
        if tid == 0:
            end = None
            for e in sorted(row, key=lambda e: e["ts"]):
                if end is not None:
                    assert e["ts"] >= end - 1e-6, \
                        f"{path}: device {pid} passes overlap at ts={e['ts']}"
                end = e["ts"] + e["dur"]
    # Every microbatch appears on the pass track (contiguous 0..max).
    mbs = {e["args"]["microbatch"] for e in events
           if e.get("tid", 0) == 0 and "microbatch" in e.get("args", {})}
    assert mbs, f"{path}: no microbatch-tagged passes"
    assert mbs == set(range(max(mbs) + 1)), f"{path}: microbatches missing: {mbs}"
    assert len(mbs) >= 4, f"{path}: suspiciously few microbatches: {mbs}"
    print(f"{path} OK: {len(events)} events, {len(rows)} rows, "
          f"{len(mbs)} microbatches, monotonic, no pass overlap")
PY
else
    # Fallback: structural greps over each trace.
    for t in $TRACE_FILES; do
        grep -q '"traceEvents"' "$t"
        grep -q '"ph":"X"' "$t"
        for mb in 0 1 2 3; do
            grep -q "\"microbatch\":$mb" "$t" || {
                echo "$t: microbatch $mb missing" >&2
                exit 1
            }
        done
        if grep -q '"dur":-' "$t"; then
            echo "$t: negative duration" >&2
            exit 1
        fi
        echo "$t OK (grep check)"
    done
fi

echo "==> sim-vs-measured drift gate (TIMELINE.json)"
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'PY'
import json
import math

with open("target/TIMELINE.json") as f:
    doc = json.load(f)

assert doc["bench"] == "timeline", doc.get("bench")
names = [s["name"] for s in doc["schedules"]]
assert "1f1b" in names and "vocab2-1f1b" in names, names
for s in doc["schedules"]:
    name = s["name"]
    assert math.isfinite(s["final_loss"]), f"{name}: loss diverged"
    assert s["makespan_ns"] > 0, f"{name}: empty measured trace"
    assert s["dropped_events"] == 0, f"{name}: {s['dropped_events']} trace events dropped"
    # Loose structural gate: the measured per-pass-kind busy shares must
    # not wander arbitrarily far from the simulated ones (observed ~0.33
    # on this workload; 0.5 catches a broken tracer or cost model, not
    # machine noise).
    assert s["max_divergence"] < 0.5, \
        f"{name}: sim-vs-measured share divergence {s['max_divergence']:.3f} >= 0.5"
    print(f"{name}: max divergence {s['max_divergence']:.3f}, "
          f"bubble sim {s['sim_bubble']:.3f} vs measured {s['mean_bubble']:.3f}, "
          f"comm overlap {s['comm_overlap']:.3f}")
print("timeline drift gate OK")
PY
else
    grep -q '"bench": "timeline"' target/TIMELINE.json
    grep -q '"name": "1f1b"' target/TIMELINE.json
    grep -q '"name": "vocab2-1f1b"' target/TIMELINE.json
    grep -q '"max_divergence"' target/TIMELINE.json
    if grep -q '"dropped_events": [1-9]' target/TIMELINE.json; then
        echo "trace events were dropped" >&2
        exit 1
    fi
    echo "timeline drift gate OK (grep check; numeric gate needs python3)"
fi

echo "CI gate passed."
