#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # Vocabulary Parallelism
//!
//! A from-scratch Rust reproduction of **"Balancing Pipeline Parallelism
//! with Vocabulary Parallelism"** (Yeung, Qi, Lin, Wan — MLSys 2025).
//!
//! Transformer pipelines place the input embedding on the first stage and
//! the output embedding + softmax on the last; as vocabularies grow (32k →
//! 256k), those stages dominate both compute and memory, creating bubbles
//! everywhere else. The paper partitions the vocabulary layers across *all*
//! pipeline devices, groups their computation into pipeline passes `S` and
//! `T`, reduces the softmax's communication barriers from 3 to 2
//! (Algorithm 1) or 1 (Algorithm 2) via online-softmax rescaling, and
//! splices those passes into existing schedules through their building
//! blocks — costing at most `barriers` extra in-flight microbatches of
//! activation memory.
//!
//! This workspace rebuilds the full system in Rust:
//!
//! | crate | role |
//! |---|---|
//! | [`vp_tensor`] | CPU tensor substrate with manual-backprop NN layers |
//! | [`vp_collectives`] | simulated multi-device collectives, p2p, comm streams |
//! | [`vp_model`] | model configs, Appendix A cost model, stage partitioners |
//! | [`vp_schedule`] | pass/building-block framework, 1F1B / V-Half / interlaced generators, validator, executor |
//! | [`vp_core`] | **the paper's contribution**: partitioned vocabulary layers (naive / Alg 1 / Alg 2) |
//! | [`vp_sim`] | discrete-event simulator regenerating the paper's tables |
//! | [`vp_runtime`] | generic schedule interpreter training real numerics on any validated schedule |
//! | [`vp_data`] | dataset substrate: BPE tokenizer, text corpus, packed GPT samples |
//! | [`vp_check`] | static schedule verifier: deadlock freedom, communication lints, activation liveness, race detection — rustc-style `VP00xx` diagnostics |
//!
//! # Quickstart
//!
//! Compare the Megatron-style baseline against Vocabulary Parallelism on a
//! simulated 8-device pipeline with a 256k vocabulary:
//!
//! ```
//! use vocab_parallelism::prelude::*;
//!
//! let config = ModelPreset::Gpt4B.config().with_vocab(256 * 1024).with_num_microbatches(16);
//! let baseline = run_1f1b(Method::Baseline, &config, 8, Hardware::default());
//! let vocab = run_1f1b(Method::Vocab2, &config, 8, Hardware::default());
//! assert!(vocab.mfu > baseline.mfu);
//! assert!(vocab.max_memory_gb() < baseline.max_memory_gb());
//! ```
//!
//! Or train a tiny GPT with real numerics and verify the pipelined loss
//! matches the single-device reference (`examples/train_tiny_gpt.rs`).

pub use vp_check;
pub use vp_collectives;
pub use vp_core;
pub use vp_data;
pub use vp_model;
pub use vp_runtime;
pub use vp_schedule;
pub use vp_sim;
pub use vp_tensor;

/// The most common imports for using the reproduction as a library.
pub mod prelude {
    pub use vp_check::{check, check_decode, CheckReport};
    pub use vp_core::{InputShard, OutputShard, VocabAlgo};
    pub use vp_model::config::{ModelConfig, ModelPreset};
    pub use vp_model::cost::{CostModel, Hardware};
    pub use vp_model::partition::{StageLayout, VocabPartition};
    pub use vp_runtime::{
        train_pipeline, train_reference, train_schedule, Mode, TinyConfig, TrainReport,
    };
    pub use vp_schedule::generators;
    pub use vp_schedule::pass::{PassKind, Schedule, VocabVariant};
    pub use vp_sim::{run_1f1b, run_vhalf, Method, SimReport, VHalfMethod};
    pub use vp_tensor::Tensor;
}
