//! Cross-crate integration tests: the paper's claims exercised through the
//! facade crate's public API, spanning schedule generation, simulation,
//! numeric kernels and the training runtime together.

use vocab_parallelism::prelude::*;
use vp_core::VocabAlgo;
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};

fn fast(preset: ModelPreset, vocab_k: usize) -> ModelConfig {
    preset
        .config()
        .with_vocab(vocab_k * 1024)
        .with_num_microbatches(32)
}

/// The headline claim, end to end: at 256k vocabulary, Vocabulary
/// Parallelism improves simulated throughput by a large factor over the
/// naive baseline while using less peak memory.
#[test]
fn headline_throughput_and_memory_win() {
    let config = fast(ModelPreset::Gpt4B, 256);
    let baseline = run_1f1b(Method::Baseline, &config, 8, Hardware::default());
    let vocab = run_1f1b(Method::Vocab2, &config, 8, Hardware::default());
    assert!(
        vocab.mfu > 1.5 * baseline.mfu,
        "vocab {} vs baseline {}",
        vocab.mfu,
        baseline.mfu
    );
    assert!(vocab.max_memory_gb() < baseline.max_memory_gb());
    // Improvement shrinks at small vocabularies but never reverses.
    let config_small = fast(ModelPreset::Gpt4B, 32);
    let b2 = run_1f1b(Method::Baseline, &config_small, 8, Hardware::default());
    let v2 = run_1f1b(Method::Vocab2, &config_small, 8, Hardware::default());
    assert!(v2.mfu > b2.mfu);
}

/// Every schedule the simulator consumes also validates under the §5.1
/// dependency rules, and the simulated peak microbatch counts agree with
/// the building-block analysis within one microbatch.
#[test]
fn schedules_validate_and_match_analytic_memory() {
    let times = PassTimes::default();
    for p in [2usize, 4, 8] {
        let m = 24u32;
        for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
            let schedule = generators::vocab_1f1b(p, m, variant, times, true);
            let graph = vp_schedule::deps::validate(&schedule).expect("valid schedule");
            let costs = UnitCosts::new(times, 1);
            let report = Executor::new(&costs).run_with_graph(&schedule, &graph);
            let block = generators::vocab_1f1b_block(p, variant, times);
            for d in 0..p {
                let analytic = block.peak_activation_microbatches(d);
                let simulated = report.peak_resident_microbatches[d] as f64;
                assert!(
                    (simulated - analytic).abs() <= 1.0,
                    "p={p} {variant:?} d={d}: simulated {simulated} vs analytic {analytic}"
                );
            }
        }
    }
}

/// The numeric kernels and the training runtime agree: a pipelined model
/// using the partitioned output layer trains to the same losses as the
/// reference, and the three output-layer strategies agree with each other.
#[test]
fn numeric_equivalence_end_to_end() {
    let config = TinyConfig {
        layers: 2,
        hidden: 16,
        heads: 2,
        microbatches: 2,
        ..TinyConfig::default()
    };
    let reference = train_reference(&config, 4).expect("reference");
    for mode in [
        Mode::Baseline,
        Mode::Vocab(VocabAlgo::Alg1),
        Mode::Vocab(VocabAlgo::Alg2),
    ] {
        let pipeline = train_pipeline(&config, 2, mode, 4).expect("pipeline");
        for (i, (r, p)) in reference.iter().zip(&pipeline).enumerate() {
            assert!(
                (r - p).abs() < 1e-3 * (1.0 + r.abs()),
                "{mode:?} iter {i}: {r} vs {p}"
            );
        }
    }
}

/// The partitioner, cost model and simulator compose: redistribution
/// reduces the imbalance the cost model reports, and the simulator's
/// throughput ordering follows (baseline ≤ redis ≤ vocab at 256k).
#[test]
fn partitioner_and_simulator_agree_on_ordering() {
    let config = fast(ModelPreset::Gpt4B, 256);
    let base_layout = StageLayout::baseline(&config, 8);
    let redis_layout = StageLayout::redistributed(&config, 8);
    assert!(redis_layout.compute_imbalance(&config) < base_layout.compute_imbalance(&config));
    let hw = Hardware::default();
    let b = run_1f1b(Method::Baseline, &config, 8, hw.clone()).mfu;
    let r = run_1f1b(Method::Redis, &config, 8, hw.clone()).mfu;
    let v = run_1f1b(Method::Vocab1, &config, 8, hw).mfu;
    assert!(b < r && r < v, "b={b} r={r} v={v}");
}

/// V-Half + Vocab-1 balances memory across devices (Table 6's claim),
/// through the full facade path.
#[test]
fn vhalf_memory_balance_through_facade() {
    let config = fast(ModelPreset::Gpt7B, 256);
    let base = run_vhalf(VHalfMethod::Baseline, &config, 16, Hardware::default());
    let vocab = run_vhalf(VHalfMethod::Vocab1, &config, 16, Hardware::default());
    assert!(base.memory_spread_gb() > 5.0 * vocab.memory_spread_gb());
    assert!(vocab.mfu > base.mfu);
}

/// The sharded vocabulary layers verify against the reference through the
/// public verification API for every algorithm.
#[test]
fn vocabulary_layers_verify_via_public_api() {
    let mut rng = vp_tensor::init::seeded_rng(7);
    let w = vp_tensor::init::normal(&mut rng, 40, 8, 0.5);
    let x = vp_tensor::init::normal(&mut rng, 6, 8, 1.0);
    let labels = [0usize, 39, 13, 20, 7, 1];
    for algo in [VocabAlgo::Naive, VocabAlgo::Alg1, VocabAlgo::Alg2] {
        let cmp = vp_core::verify::compare_output_layer(algo, 5, &w, &x, &labels).unwrap();
        assert!(cmp.passes(1e-4), "{algo:?}: {cmp:?}");
    }
    let err = vp_core::verify::compare_input_layer(5, &w, &[0, 39, 13]).unwrap();
    assert!(err < 1e-6);
}
