//! Integration tests for the extensions built on top of the core
//! reproduction (see DESIGN.md §10), exercised through the facade crate.

use std::sync::Arc;
use vocab_parallelism::prelude::*;
use vp_core::VocabAlgo;
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};

/// Zero-bubble 1F1B with Vocab-2: both `W` and the deferrable `T` fill
/// bubbles, beating plain 1F1B+Vocab-2 in simulated MFU at equal memory.
#[test]
fn zero_bubble_vocab_beats_plain_vocab() {
    let config = ModelPreset::Gpt4B
        .config()
        .with_vocab(256 * 1024)
        .with_num_microbatches(32);
    let plain = run_1f1b(Method::Vocab2, &config, 8, Hardware::default());
    let zb = vp_sim::run_zero_bubble(&config, 8, Hardware::default(), Some(VocabVariant::Alg2));
    assert!(zb.mfu > plain.mfu, "zb {} vs plain {}", zb.mfu, plain.mfu);
}

/// The barrier ablation through the facade: memory ordered 3 > 2 > 1
/// barriers at comparable throughput.
#[test]
fn barrier_ablation_shape_via_facade() {
    let config = ModelPreset::Gpt4B
        .config()
        .with_vocab(256 * 1024)
        .with_num_microbatches(32);
    let reports = vp_sim::run_barrier_ablation(&config, 8, &Hardware::default());
    assert!(reports[0].max_memory_gb() > reports[2].max_memory_gb());
    assert!((reports[0].mfu - reports[2].mfu).abs() < 0.06 * reports[2].mfu);
}

/// Interleaved 1F1B with vocabulary passes — the third schedule family —
/// validates and sustains throughput under the same dependency rules.
#[test]
fn interleaved_vocab_schedules_validate() {
    let times = PassTimes {
        f: 0.5,
        b: 1.0,
        ..PassTimes::default()
    };
    for variant in [VocabVariant::Alg1, VocabVariant::Alg2] {
        let sched = generators::interleaved_vocab_1f1b(4, 2, 16, variant, times, false);
        vp_schedule::deps::validate(&sched).expect("interleaved vocab schedule validates");
        let costs = UnitCosts::new(times, 2);
        let report = Executor::new(&costs).run(&sched).unwrap();
        assert!(report.makespan > 0.0);
    }
}

/// Tied embeddings and the data pipeline compose: a tied vocab-parallel
/// pipeline trains on BPE-tokenized text and matches the tied reference.
#[test]
fn tied_training_on_bpe_text_matches_reference() {
    use vp_data::{BpeTokenizer, PackedDataset, TextCorpus};
    use vp_runtime::data::{DataSource, Microbatch};
    let text = TextCorpus::new(5).text(100);
    let tok = BpeTokenizer::train(&text, 300);
    let ds = PackedDataset::new(tok.encode(&text), 16).unwrap();
    let samples: Vec<Microbatch> = ds
        .epoch(0)
        .into_iter()
        .map(|s| Microbatch {
            tokens: s.tokens,
            labels: s.labels,
        })
        .collect();
    let source = DataSource::Fixed(Arc::new(samples));
    let config = TinyConfig {
        vocab: tok.vocab_size(),
        tied: true,
        ..TinyConfig::default()
    };
    let reference = vp_runtime::train_reference_on(&config, 4, &source).unwrap();
    let pipeline = vp_runtime::train_pipeline_on(
        &config,
        2,
        Mode::Vocab(VocabAlgo::Alg2),
        vp_runtime::ScheduleFamily::OneFOneB,
        4,
        &source,
    )
    .unwrap();
    for (r, p) in reference.iter().zip(&pipeline) {
        assert!((r - p).abs() < 1e-3 * (1.0 + r.abs()), "{r} vs {p}");
    }
}

/// Data parallelism composes with V-Half and Vocabulary Parallelism — the
/// full grid — and still matches the single-device reference.
#[test]
fn dp_vhalf_vocab_matches_reference() {
    let config = TinyConfig::default(); // 4 layers = 2 devices × 2 chunks
    let src = vp_runtime::DataSource::Synthetic(vp_runtime::SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    let reference = train_reference(&config, 4).unwrap();
    let dp_run = vp_runtime::train_pipeline_dp(
        &config,
        2,
        2,
        Mode::Vocab(VocabAlgo::Alg1),
        vp_runtime::ScheduleFamily::VHalf,
        4,
        &src,
    )
    .unwrap();
    for (i, (r, p)) in reference.iter().zip(&dp_run).enumerate() {
        assert!(
            (r - p).abs() < 1e-3 * (1.0 + r.abs()),
            "iter {i}: {r} vs {p}"
        );
    }
}

/// The checkpointed trainer resumes exactly through the facade.
#[test]
fn checkpoint_resume_via_facade() {
    let config = TinyConfig::default();
    let src = vp_runtime::DataSource::Synthetic(vp_runtime::SyntheticCorpus::new(
        config.vocab,
        config.seq_len,
        config.seed,
    ));
    let mut full = vp_runtime::ReferenceTrainer::new(&config);
    let all = full.train(6, &src).unwrap();
    let mut head = vp_runtime::ReferenceTrainer::new(&config);
    let first = head.train(3, &src).unwrap();
    let mut tail = vp_runtime::ReferenceTrainer::load(&config, &head.save()).unwrap();
    let rest = tail.train(3, &src).unwrap();
    let stitched: Vec<f64> = first.into_iter().chain(rest).collect();
    assert_eq!(stitched, all);
}

/// The closed-form memory estimator and the simulator agree through the
/// public API.
#[test]
fn estimator_matches_simulator_via_facade() {
    let config = ModelPreset::Gpt4B
        .config()
        .with_vocab(128 * 1024)
        .with_num_microbatches(32);
    let hw = Hardware::default();
    let layout = StageLayout::vocab_parallel(&config, 8);
    let analytic = vp_model::memory::estimate_1f1b(
        &config,
        &hw,
        &layout,
        vp_model::memory::PlacementKind::VocabParallel { barriers: 1 },
    );
    let simulated = run_1f1b(Method::Vocab2, &config, 8, hw);
    #[allow(clippy::needless_range_loop)] // d indexes two parallel reports
    for d in 0..8 {
        let a = analytic[d].total_gb();
        let s = simulated.peak_memory_bytes[d] / 1e9;
        assert!((a - s).abs() < 1.5, "device {d}: {a} vs {s}");
    }
}
