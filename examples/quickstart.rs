//! Quickstart: simulate the paper's headline comparison — the Megatron
//! baseline vs. Vocabulary Parallelism on an 8-device 1F1B pipeline as the
//! vocabulary grows from 32k to 256k.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vocab_parallelism::prelude::*;

fn main() {
    let hardware = Hardware::default();
    println!("4B GPT on 8 simulated A100s, 1F1B, 128 microbatches\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "vocab", "baseline MFU", "vocab-2 MFU", "baseline GB", "vocab-2 GB"
    );
    for vocab_k in [32usize, 64, 128, 256] {
        let config = ModelPreset::Gpt4B.config().with_vocab(vocab_k * 1024);
        let baseline = run_1f1b(Method::Baseline, &config, 8, hardware.clone());
        let vocab = run_1f1b(Method::Vocab2, &config, 8, hardware.clone());
        println!(
            "{:>7}k {:>13.1}% {:>13.1}% {:>13.1}G {:>13.1}G",
            vocab_k,
            baseline.mfu_pct(),
            vocab.mfu_pct(),
            baseline.max_memory_gb(),
            vocab.max_memory_gb()
        );
    }
    println!("\nThe baseline's last stage carries the whole output layer: its MFU collapses");
    println!("as V grows while Vocabulary Parallelism stays flat and uses less memory —");
    println!("the shape of the paper's Figure 11/12.");
}
