//! Train a tiny GPT three ways — single device, pipelined with the
//! Megatron-style baseline, and pipelined with Vocabulary Parallelism
//! (Algorithm 2) — and show the loss curves coincide (the paper's
//! Figure 17 / Appendix E correctness evaluation).
//!
//! ```text
//! cargo run --release --example train_tiny_gpt
//! ```

use vocab_parallelism::prelude::*;
use vp_core::VocabAlgo;

fn main() {
    let config = TinyConfig::default();
    let iterations = 15;
    println!(
        "tiny GPT: {} layers, hidden {}, vocab {}, {} microbatches of {} tokens; 4 pipeline devices\n",
        config.layers, config.hidden, config.vocab, config.microbatches, config.seq_len
    );

    let reference = train_reference(&config, iterations).expect("reference training");
    let baseline =
        train_pipeline(&config, 4, Mode::Baseline, iterations).expect("baseline pipeline");
    let vocab2 = train_pipeline(&config, 4, Mode::Vocab(VocabAlgo::Alg2), iterations)
        .expect("vocab-2 pipeline");

    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "iter", "reference", "pp-baseline", "pp-vocab-2"
    );
    for i in 0..iterations {
        println!(
            "{:>5} {:>12.6} {:>12.6} {:>12.6}",
            i, reference[i], baseline[i], vocab2[i]
        );
    }
    let max_dev = reference
        .iter()
        .zip(baseline.iter().zip(&vocab2))
        .map(|(r, (b, v))| (r - b).abs().max((r - v).abs()))
        .fold(0.0f64, f64::max);
    println!("\nmax |Δloss| vs reference: {max_dev:.2e}");
    println!("All three implementations follow the same trajectory — the partitioned");
    println!("softmax (Algorithms 1/2) is numerically equivalent to the full softmax.");
}
