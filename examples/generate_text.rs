//! Train the tiny GPT on BPE-tokenized text, checkpoint it, reload, and
//! greedily generate continuations — the whole library working together:
//! corpus → tokenizer → packed dataset → trainer → checkpoint → decoding.
//!
//! ```text
//! cargo run --release --example generate_text
//! ```

use std::sync::Arc;
use vocab_parallelism::prelude::*;
use vp_data::{BpeTokenizer, PackedDataset, TextCorpus};
use vp_runtime::data::{DataSource, Microbatch};
use vp_runtime::ReferenceTrainer;

fn main() {
    // Data path.
    let corpus = TextCorpus::new(99);
    let text = corpus.text(300);
    let tokenizer = BpeTokenizer::train(&text, 384);
    let ids = tokenizer.encode(&text);
    let dataset = PackedDataset::new(ids, 16).expect("enough tokens");
    let samples: Vec<Microbatch> = dataset
        .epoch(0)
        .into_iter()
        .map(|s| Microbatch {
            tokens: s.tokens,
            labels: s.labels,
        })
        .collect();
    let source = DataSource::Fixed(Arc::new(samples));

    // Train, checkpoint, resume (exactness is tested in the suite; here we
    // just exercise the workflow).
    let config = TinyConfig {
        vocab: tokenizer.vocab_size(),
        microbatches: 8,
        ..TinyConfig::default()
    };
    let mut trainer = ReferenceTrainer::new(&config);
    trainer.train(30, &source).expect("first training leg");
    let checkpoint = trainer.save();
    println!(
        "checkpoint: {} bytes after {} iterations",
        checkpoint.len(),
        trainer.iterations_done()
    );
    let mut trainer = ReferenceTrainer::load(&config, &checkpoint).expect("restore");
    trainer.train(30, &source).expect("second training leg");

    // Evaluate on a held-out region of the stream.
    let eval = trainer.evaluate(&source, 10_000, 4).expect("evaluation");
    println!(
        "held-out: loss {:.3}, perplexity {:.1}, next-token accuracy {:.1}%",
        eval.loss,
        eval.perplexity,
        100.0 * eval.accuracy
    );

    // Generate.
    let prompt_text = "the pipeline ";
    let prompt: Vec<usize> = tokenizer
        .encode(prompt_text)
        .iter()
        .map(|&t| t as usize)
        .collect();
    let generated = trainer.generate(&prompt, 24).expect("generation");
    let generated_u32: Vec<u32> = generated.iter().map(|&t| t as u32).collect();
    println!("\nprompt:    {prompt_text:?}");
    println!("generated: {:?}", tokenizer.decode(&generated_u32));
}
