//! Render the paper's schedule figures as ASCII timelines: plain 1F1B
//! (Figure 1), 1F1B with Vocabulary Parallelism (Figures 9/10), the
//! interlaced pipeline (Figure 15b) and V-Half with vocabulary passes
//! (Figure 16).
//!
//! ```text
//! cargo run --release --example schedule_gallery
//! ```

use vocab_parallelism::prelude::*;
use vp_schedule::block::PassTimes;
use vp_schedule::exec::{Executor, UnitCosts};
use vp_schedule::render;

fn show(title: &str, schedule: &Schedule, times: PassTimes) {
    let costs = UnitCosts::new(times, schedule.chunks());
    let report = Executor::new(&costs)
        .run(schedule)
        .expect("schedules validate");
    println!("\n== {title} ==");
    println!(
        "makespan {:.1} units, mean bubble {:.1}%, peak in-flight microbatches {:?}",
        report.makespan,
        100.0 * report.mean_bubble_fraction(),
        report.peak_resident_microbatches
    );
    print!("{}", render::render_timeline(schedule, &report, 100));
}

fn main() {
    let times = PassTimes::default();
    println!("{}", render::legend());

    show(
        "Figure 1: plain 1F1B, p=4 (activation memory p−d microbatches)",
        &generators::one_f_one_b(4, 8, times),
        times,
    );
    show(
        "Figure 10a: 1F1B + Vocab-1 (Algorithm 1, +2 microbatches)",
        &generators::vocab_1f1b(4, 8, VocabVariant::Alg1, times, true),
        times,
    );
    show(
        "Figure 10b: 1F1B + Vocab-2 (Algorithm 2, +1 microbatch)",
        &generators::vocab_1f1b(4, 8, VocabVariant::Alg2, times, true),
        times,
    );
    show(
        "Figure 15b: interlaced pipeline (sync vocab phases)",
        &generators::interlaced_1f1b(4, 8, times),
        times,
    );
    let vtimes = PassTimes {
        b: 1.0,
        w: 1.0,
        ..times
    };
    show(
        "Figure 16: V-Half + Vocab-1 (two chunks per device)",
        &generators::vhalf_vocab(4, 8, VocabVariant::Alg1, vtimes, true),
        vtimes,
    );
}
