//! The full data path of the artifact, offline: generate a text corpus,
//! train a BPE tokenizer (the vocabulary whose size drives the whole
//! paper), pack the token stream into GPT samples, and train the tiny
//! model with Vocabulary Parallelism on it.
//!
//! ```text
//! cargo run --release --example train_on_text
//! ```

use std::sync::Arc;
use vocab_parallelism::prelude::*;
use vp_core::VocabAlgo;
use vp_data::{BpeTokenizer, PackedDataset, TextCorpus, TokenFile};
use vp_runtime::data::{DataSource, Microbatch};
use vp_runtime::{train_pipeline_on, ScheduleFamily};

fn main() {
    // 1. Corpus + tokenizer (the paper sweeps exactly this vocabulary size).
    let corpus = TextCorpus::new(7);
    let text = corpus.text(200);
    let tokenizer = BpeTokenizer::train(&text, 384);
    let ids = tokenizer.encode(&text);
    println!(
        "corpus: {} bytes → {} tokens with a {}-entry BPE vocabulary ({}x compression)",
        text.len(),
        ids.len(),
        tokenizer.vocab_size(),
        text.len() / ids.len().max(1)
    );

    // 2. Binary round-trip (the Megatron-style on-disk format).
    let file = TokenFile {
        vocab_size: tokenizer.vocab_size() as u32,
        tokens: ids.clone(),
    };
    let blob = file.to_bytes();
    let parsed = TokenFile::from_bytes(blob.clone()).expect("round trip");
    println!(
        "token file: {} bytes on disk, parses back identically: {}",
        blob.len(),
        parsed == file
    );

    // 3. Pack into training samples.
    let seq_len = 16;
    let dataset = PackedDataset::new(ids, seq_len).expect("enough tokens");
    let samples: Vec<Microbatch> = dataset
        .epoch(0)
        .into_iter()
        .map(|s| Microbatch {
            tokens: s.tokens,
            labels: s.labels,
        })
        .collect();
    println!("packed {} samples of {seq_len} tokens", samples.len());

    // 4. Train with pipeline + vocabulary parallelism on 4 devices.
    let config = TinyConfig {
        vocab: tokenizer.vocab_size(),
        ..TinyConfig::default()
    };
    let source = DataSource::Fixed(Arc::new(samples));
    let losses = train_pipeline_on(
        &config,
        4,
        Mode::Vocab(VocabAlgo::Alg2),
        ScheduleFamily::OneFOneB,
        15,
        &source,
    )
    .expect("training succeeds");
    println!("\niter  loss");
    for (i, l) in losses.iter().enumerate() {
        println!("{i:>4}  {l:.4}");
    }
    println!(
        "\nloss fell from {:.3} to {:.3} on BPE-tokenized text under Vocab-2 pipeline training.",
        losses[0],
        losses.last().unwrap()
    );
}
