//! A small planning tool built on the public API: given a model and a
//! device budget, compare all scheduling methods and recommend one.
//!
//! ```text
//! cargo run --release --example memory_planner -- [devices] [vocab_k] [seq]
//! ```
//!
//! Defaults: 16 devices, 256k vocabulary, sequence length 4096.

use vocab_parallelism::prelude::*;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let devices = args.first().copied().unwrap_or(16);
    let vocab_k = args.get(1).copied().unwrap_or(256);
    let seq = args.get(2).copied().unwrap_or(4096);
    let preset = match devices {
        ..=8 => ModelPreset::Gpt4B,
        9..=16 => ModelPreset::Gpt10B,
        _ => ModelPreset::Gpt21B,
    };
    let config = preset.config().with_vocab(vocab_k * 1024).with_seq_len(seq);
    let hardware = Hardware::default();

    println!(
        "Planning: {:?} ({} layers, hidden {}), {} devices, vocab {}k, seq {}\n",
        preset, config.layers, config.hidden, devices, vocab_k, seq
    );
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10}",
        "method", "MFU %", "peak GB", "spread GB", "fits 80G?"
    );
    let mut best: Option<SimReport> = None;
    for method in Method::all() {
        let report = run_1f1b(method, &config, devices, hardware.clone());
        println!(
            "{:>12} {:>8.2} {:>10.1} {:>10.1} {:>10}",
            report.method,
            report.mfu_pct(),
            report.max_memory_gb(),
            report.memory_spread_gb(),
            if report.would_oom() { "NO" } else { "yes" }
        );
        let better = match &best {
            None => !report.would_oom(),
            Some(b) => !report.would_oom() && report.mfu > b.mfu,
        };
        if better {
            best = Some(report);
        }
    }
    match best {
        Some(b) => println!(
            "\nRecommendation: {} ({:.1}% MFU, {:.1} GB peak).",
            b.method,
            b.mfu_pct(),
            b.max_memory_gb()
        ),
        None => println!("\nNo method fits in 80 GB — shrink the model or add devices."),
    }
}
